// Fault-injection tests: drive the recoverable-error paths of every join
// algorithm by arming failpoints at each allocation phase, and exercise the
// failpoint machinery and the executor dispatch watchdog directly.
//
// The contract under test (docs/ROBUSTNESS.md): an injected allocation
// failure in any phase surfaces as a non-OK Status from Joiner::Run /
// join::RunJoin -- no abort, no crash, no leaked NUMA regions -- and the
// very next join on the same Joiner succeeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "core/joiner.h"
#include "join/join_algorithm.h"
#include "join/materialize.h"
#include "mem/aligned_alloc.h"
#include "mem/budget.h"
#include "thread/executor.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "tpch/tables.h"
#include "util/failpoint.h"
#include "util/failpoint_registry.h"
#include "util/log.h"
#include "util/status.h"
#include "workload/generator.h"

namespace mmjoin {
namespace {

// ---------------------------------------------------------------------------
// FailPoint unit tests
// ---------------------------------------------------------------------------

TEST(FailPoint, OnceFiresExactlyOnce) {
  FailPoint& fp = FailPoint::Get("test.once");
  fp.Activate(FailPoint::Mode::kOnce);
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
}

TEST(FailPoint, NthFiresOnNthEvaluation) {
  FailPoint& fp = FailPoint::Get("test.nth");
  fp.Activate(FailPoint::Mode::kNth, /*n=*/3);
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());  // disarmed after firing
}

TEST(FailPoint, AlwaysFiresUntilDeactivated) {
  FailPoint& fp = FailPoint::Get("test.always");
  fp.Activate(FailPoint::Mode::kAlways);
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  fp.Deactivate();
  EXPECT_FALSE(fp.ShouldFail());
}

TEST(FailPoint, ProbabilityExtremes) {
  FailPoint& fp = FailPoint::Get("test.prob");
  fp.Activate(FailPoint::Mode::kProb, /*n=*/1, /*probability=*/1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(fp.ShouldFail());
  fp.Activate(FailPoint::Mode::kProb, /*n=*/1, /*probability=*/0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.ShouldFail());
  fp.Deactivate();
}

TEST(FailPoint, ConfigureParsesEveryTriggerForm) {
  ASSERT_TRUE(failpoint::Configure("test.cfg.a=once,test.cfg.b=nth:2").ok());
  ASSERT_TRUE(failpoint::Configure("test.cfg.c=prob:0.5").ok());
  ASSERT_TRUE(failpoint::Configure("test.cfg.d=always").ok());
  const auto names = failpoint::ActiveNames();
  for (const char* expect :
       {"test.cfg.a", "test.cfg.b", "test.cfg.c", "test.cfg.d"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end())
        << expect;
  }
  ASSERT_TRUE(failpoint::Configure("test.cfg.a=off").ok());
  const auto after = failpoint::ActiveNames();
  EXPECT_EQ(std::find(after.begin(), after.end(), "test.cfg.a"), after.end());
  failpoint::DeactivateAll();
  EXPECT_TRUE(failpoint::ActiveNames().empty());
}

TEST(FailPoint, MalformedSpecAppliesNothing) {
  failpoint::DeactivateAll();
  // The second entry is invalid; the valid first entry must not be applied
  // either (parse everything, then apply).
  EXPECT_FALSE(
      failpoint::Configure("test.cfg.e=once,test.cfg.f=bogus").ok());
  EXPECT_FALSE(failpoint::Configure("test.cfg.g=nth:xyz").ok());
  EXPECT_FALSE(failpoint::Configure("test.cfg.h=prob:1.5").ok());
  EXPECT_FALSE(failpoint::Configure("no_equals_sign").ok());
  EXPECT_TRUE(failpoint::ActiveNames().empty());
}

TEST(FailPoint, RegistryKnowsEveryCanonicalName) {
  // The X-macro registry is the lint-checked source of truth; the runtime
  // view must agree with it.
  EXPECT_GE(std::size(failpoint::kRegisteredNames), 9u);
  for (const std::string_view name : failpoint::kRegisteredNames) {
    EXPECT_TRUE(failpoint::IsCanonicalName(name)) << name;
    EXPECT_NE(name.substr(0, failpoint::kTestNamePrefix.size()),
              failpoint::kTestNamePrefix)
        << name << ": test.* namespace is reserved for ad-hoc points";
  }
  EXPECT_TRUE(failpoint::IsCanonicalName("alloc.partition"));
  EXPECT_FALSE(failpoint::IsCanonicalName("alloc.partitoin"));  // the typo
  EXPECT_FALSE(failpoint::IsCanonicalName("test.once"));
}

TEST(FailPoint, ConfigureWarnsOnUnknownNameButStillArms) {
  failpoint::DeactivateAll();
  std::string captured;
  logging::SetLogCaptureForTest(&captured);
  logging::SetLogFormatForTest(logging::LogFormat::kText);

  // Canonical and test-reserved names arm silently.
  ASSERT_TRUE(failpoint::Configure("alloc.partition=once").ok());
  ASSERT_TRUE(failpoint::Configure("test.cfg.a=once").ok());
  EXPECT_EQ(captured.find("failpoint.unknown_name"), std::string::npos)
      << captured;

  // A typo'd name warns but the (well-formed) spec still applies.
  ASSERT_TRUE(failpoint::Configure("alloc.partitoin=once").ok());
  EXPECT_NE(captured.find("failpoint.unknown_name"), std::string::npos);
  EXPECT_NE(captured.find("alloc.partitoin"), std::string::npos);
  const auto names = failpoint::ActiveNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "alloc.partitoin"),
            names.end());

  logging::SetLogCaptureForTest(nullptr);
  logging::SetLogFormatForTest(logging::LogFormat::kDefault);
  failpoint::DeactivateAll();
}

// ---------------------------------------------------------------------------
// Per-phase fault injection through Joiner::Run, all thirteen algorithms
// ---------------------------------------------------------------------------

class JoinFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    build_ = workload::MakeDenseBuild(joiner_.system(), 8192, 1).value();
    probe_ =
        workload::MakeUniformProbe(joiner_.system(), 32768, 8192, 2).value();
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  core::Joiner joiner_;
  workload::Relation build_;
  workload::Relation probe_;
};

// Every algorithm must surface an injected allocation failure in each phase
// as a non-OK Status (never an abort), unwind all NUMA regions, and run
// cleanly immediately afterwards.
TEST_F(JoinFaultTest, EveryAlgorithmFailsCleanlyInEveryPhase) {
  for (const char* phase : {"partition", "build", "probe"}) {
    const std::string spec = std::string("alloc.") + phase + "=once";
    for (const join::Algorithm algorithm : join::AllAlgorithms()) {
      const std::size_t live_before = joiner_.system()->num_live_regions();
      ASSERT_TRUE(failpoint::Configure(spec).ok());

      const auto failed = joiner_.Run(algorithm, build_, probe_);
      ASSERT_FALSE(failed.ok())
          << join::NameOf(algorithm) << " ignored " << spec;
      EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
          << join::NameOf(algorithm) << " " << spec;
      EXPECT_NE(failed.status().message().find(phase), std::string::npos)
          << join::NameOf(algorithm) << ": '" << failed.status().message()
          << "' does not name the " << phase << " phase";
      EXPECT_EQ(joiner_.system()->num_live_regions(), live_before)
          << join::NameOf(algorithm) << " leaked a region after " << spec;

      // The failpoint disarmed itself (once); the same joiner must recover.
      const auto recovered = joiner_.Run(algorithm, build_, probe_);
      ASSERT_TRUE(recovered.ok())
          << join::NameOf(algorithm) << " did not recover after " << spec
          << ": " << recovered.status().ToString();
      EXPECT_EQ(recovered.value().matches, probe_.size())
          << join::NameOf(algorithm);
    }
  }
}

// The materialize failpoint guards sink-fed runs: armed, every algorithm
// refuses to start; no sink, the failpoint is not even evaluated.
TEST_F(JoinFaultTest, MaterializeFailpointGatesSinkRuns) {
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    ASSERT_TRUE(failpoint::Configure("alloc.materialize=once").ok());
    const auto failed = joiner_.RunMaterialized(algorithm, build_, probe_);
    ASSERT_FALSE(failed.ok()) << join::NameOf(algorithm);
    EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
        << join::NameOf(algorithm);

    const auto recovered = joiner_.RunMaterialized(algorithm, build_, probe_);
    ASSERT_TRUE(recovered.ok())
        << join::NameOf(algorithm) << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered.value().size(), probe_.size())
        << join::NameOf(algorithm);
  }

  // Without a sink the materialize failpoint must not trip plain runs.
  ASSERT_TRUE(failpoint::Configure("alloc.materialize=once").ok());
  EXPECT_TRUE(joiner_.Run(join::Algorithm::kNOP, build_, probe_).ok());
  failpoint::DeactivateAll();
}

// alloc.mmap sits in the allocator itself: the first buffer the join
// requests reports ResourceExhausted and the error propagates out of Run.
TEST_F(JoinFaultTest, AllocatorLevelFaultPropagates) {
  ASSERT_TRUE(failpoint::Configure("alloc.mmap=once").ok());
  const auto failed = joiner_.Run(join::Algorithm::kPRO, build_, probe_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(mem::GetAllocStats().injected_failures, 1u);

  const auto recovered = joiner_.Run(join::Algorithm::kPRO, build_, probe_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().matches, probe_.size());
}

// An injected budget-reservation failure must surface exactly like a real
// one -- a clean ResourceExhausted, no leaked regions -- in every algorithm,
// and the same joiner must run cleanly right afterwards (budgets are
// per-run, so no state lingers).
TEST_F(JoinFaultTest, BudgetReserveFaultFailsCleanlyEverywhere) {
  join::JoinConfig config;
  config.mem_budget_bytes = uint64_t{1} << 30;  // ample: only the fault fails
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const std::size_t live_before = joiner_.system()->num_live_regions();
    ASSERT_TRUE(failpoint::Configure("budget.reserve=once").ok());

    const auto failed = joiner_.Run(algorithm, config, build_, probe_);
    ASSERT_FALSE(failed.ok())
        << join::NameOf(algorithm) << " ignored budget.reserve";
    EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
        << join::NameOf(algorithm);
    EXPECT_EQ(joiner_.system()->num_live_regions(), live_before)
        << join::NameOf(algorithm) << " leaked a region";

    const auto recovered = joiner_.Run(algorithm, config, build_, probe_);
    ASSERT_TRUE(recovered.ok())
        << join::NameOf(algorithm) << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered.value().matches, probe_.size())
        << join::NameOf(algorithm);
  }
}

// Each degradation edge fires deterministically: stage 1 (re-plan) from a
// budget just under the measured plan, stage 2 (waves) from the budget.wave
// failpoint, rejection from budget.reserve.
TEST_F(JoinFaultTest, EveryDegradationEdgeFiresDeterministically) {
  join::JoinConfig config;

  // Re-plan edge: PRB's two-pass plan cannot fit just under its own peak,
  // so it must drop to one pass (counted as a replan).
  {
    mem::BudgetTracker measure(uint64_t{1} << 40);
    join::JoinConfig measured = config;
    measured.budget = &measure;
    ASSERT_TRUE(join::RunJoin(join::Algorithm::kPRB, joiner_.system(),
                              measured, build_, probe_)
                    .ok());
    mem::ResetBudgetStats();
    mem::BudgetTracker tight(measure.peak_reserved_bytes() - 1);
    join::JoinConfig degraded = config;
    degraded.budget = &tight;
    const auto result = join::RunJoin(join::Algorithm::kPRB, joiner_.system(),
                                      degraded, build_, probe_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().matches, probe_.size());
    EXPECT_GE(mem::GetBudgetStats().replans, 1u);
  }

  // Wave edge: budget.wave forces the spill path with no budget at all.
  {
    mem::ResetBudgetStats();
    ASSERT_TRUE(failpoint::Configure("budget.wave=always").ok());
    const auto result = joiner_.Run(join::Algorithm::kPRO, config, build_,
                                    probe_);
    failpoint::DeactivateAll();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().matches, probe_.size());
    const mem::BudgetStats stats = mem::GetBudgetStats();
    EXPECT_GE(stats.waves, 1u);
    EXPECT_GE(stats.wave_rounds, 2u);
  }

  // Reject edge: an indivisible working set larger than the budget.
  {
    mem::ResetBudgetStats();
    mem::BudgetTracker tiny(1024);  // below any table estimate
    join::JoinConfig rejected = config;
    rejected.budget = &tiny;
    const auto result = join::RunJoin(join::Algorithm::kNOP, joiner_.system(),
                                      rejected, build_, probe_);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    EXPECT_GE(mem::GetBudgetStats().rejections, 1u);
  }
}

// ---------------------------------------------------------------------------
// Fault injection through the exec:: pipeline (TPC-H Q19)
// ---------------------------------------------------------------------------

class PipelineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    tpch::GeneratorOptions options;
    options.lineitem_rows = 200000;
    options.part_rows = 10000;
    options.seed = 11;
    lineitem_ = std::make_unique<tpch::LineitemTable>(
        tpch::GenerateLineitem(System(), options));
    part_ = std::make_unique<tpch::PartTable>(
        tpch::GeneratePart(System(), options));
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  static numa::NumaSystem* System() {
    static auto* system = new numa::NumaSystem(4);
    return system;
  }

  std::unique_ptr<tpch::LineitemTable> lineitem_;
  std::unique_ptr<tpch::PartTable> part_;
};

// An allocation fault inside the embedded join must surface as a clean
// Status from the whole pipeline -- both reconstruction strategies, every
// phase -- and the immediately following run must produce the reference
// revenue.
TEST_F(PipelineFaultTest, JoinAllocFaultsSurfaceCleanlyInBothStrategies) {
  const double reference = tpch::Q19Reference(*lineitem_, *part_);
  for (const tpch::Q19Strategy strategy :
       {tpch::Q19Strategy::kPipelined, tpch::Q19Strategy::kJoinIndex}) {
    for (const char* spec :
         {"alloc.partition=once", "alloc.build=once", "alloc.probe=once"}) {
      ASSERT_TRUE(failpoint::Configure(spec).ok());
      const auto failed = tpch::TryRunQ19(System(), *lineitem_, *part_,
                                          join::Algorithm::kCPRL,
                                          /*num_threads=*/4, strategy);
      ASSERT_FALSE(failed.ok()) << spec;
      EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
          << spec << ": " << failed.status().ToString();
      failpoint::DeactivateAll();

      const auto recovered = tpch::TryRunQ19(System(), *lineitem_, *part_,
                                             join::Algorithm::kCPRL,
                                             /*num_threads=*/4, strategy);
      ASSERT_TRUE(recovered.ok()) << spec << ": "
                                  << recovered.status().ToString();
      EXPECT_NEAR(recovered.value().revenue, reference,
                  std::abs(reference) * 1e-9)
          << spec;
    }
  }
}

// A budget rejection inside the pipeline's join propagates the same way: a
// clean Status, then full recovery (the per-run tracker leaves no state).
TEST_F(PipelineFaultTest, BudgetRejectionPropagatesThroughPipeline) {
  ASSERT_TRUE(failpoint::Configure("budget.reserve=once").ok());
  const auto failed = tpch::TryRunQ19(
      System(), *lineitem_, *part_, join::Algorithm::kNOP, /*num_threads=*/4,
      tpch::Q19Strategy::kPipelined, /*executor=*/nullptr,
      /*compaction_threshold=*/-1.0,
      /*mem_budget_bytes=*/uint64_t{1} << 30);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  failpoint::DeactivateAll();

  const auto recovered = tpch::TryRunQ19(
      System(), *lineitem_, *part_, join::Algorithm::kNOP, /*num_threads=*/4,
      tpch::Q19Strategy::kPipelined, /*executor=*/nullptr,
      /*compaction_threshold=*/-1.0,
      /*mem_budget_bytes=*/uint64_t{1} << 30);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_NEAR(recovered.value().revenue,
              tpch::Q19Reference(*lineitem_, *part_),
              std::abs(recovered.value().revenue) * 1e-9 + 1e-9);
}

// ---------------------------------------------------------------------------
// Graceful degradation and validation
// ---------------------------------------------------------------------------

TEST(Degradation, HugePageDenialFallsBackToDefaultPages) {
  numa::NumaSystem system(2, mem::PagePolicy::kHuge);
  ASSERT_TRUE(failpoint::Configure("alloc.madvise_huge=once").ok());
  const mem::AllocStats before = mem::GetAllocStats();
  // Above the mmap threshold so the huge-page path is taken.
  void* ptr = system.TryAllocate(4u << 20, numa::Placement::kLocal);
  failpoint::DeactivateAll();
  ASSERT_NE(ptr, nullptr);  // degraded, not failed
  const mem::AllocStats after = mem::GetAllocStats();
  EXPECT_GT(after.huge_page_fallbacks, before.huge_page_fallbacks);
  system.Free(ptr);
}

TEST(Degradation, OutOfRangeHomeNodeClampsAndCounts) {
  numa::NumaSystem system(2);
  const mem::AllocStats before = mem::GetAllocStats();
  void* ptr =
      system.TryAllocate(1u << 12, numa::Placement::kLocal, /*home_node=*/99);
  ASSERT_NE(ptr, nullptr);
  const mem::AllocStats after = mem::GetAllocStats();
  EXPECT_GT(after.numa_degradations, before.numa_degradations);
  system.Free(ptr);
}

TEST(Validation, JoinConfigRejectsUnrunnableSettings) {
  core::Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 1024, 3).value();
  auto probe =
      workload::MakeUniformProbe(joiner.system(), 4096, 1024, 4).value();

  join::JoinConfig bad_bits;
  bad_bits.radix_bits = join::JoinConfig::kMaxRadixBits + 1;
  EXPECT_EQ(joiner.Run(join::Algorithm::kPRO, bad_bits, build, probe)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  join::JoinConfig bad_passes;
  bad_passes.num_passes = 3;
  EXPECT_EQ(joiner.Run(join::Algorithm::kPRO, bad_passes, build, probe)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Validation, JoinerCreateRejectsBadOptions) {
  core::JoinerOptions bad;
  bad.num_threads = 0;
  EXPECT_EQ(core::Joiner::Create(bad).status().code(),
            StatusCode::kInvalidArgument);
  bad.num_threads = 4;
  bad.num_nodes = 0;
  EXPECT_EQ(core::Joiner::Create(bad).status().code(),
            StatusCode::kInvalidArgument);
  bad.num_nodes = 2;
  EXPECT_TRUE(core::Joiner::Create(bad).ok());
}

// ---------------------------------------------------------------------------
// Executor dispatch watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, StuckDispatchPoisonsExecutor) {
  thread::Executor executor(2, /*num_nodes=*/1);
  executor.set_watchdog_timeout(50);
  const Status stuck =
      executor.Dispatch(2, [](const thread::WorkerContext& ctx) {
        if (ctx.thread_id == 1) {
          // Bounded straggler: long enough to trip the 50 ms watchdog,
          // short enough that the destructor's join completes.
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
      });
  EXPECT_EQ(stuck.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(executor.poisoned());

  // A poisoned executor refuses further dispatches instead of racing the
  // straggler.
  const Status refused =
      executor.Dispatch(2, [](const thread::WorkerContext&) {});
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
}

TEST(Watchdog, DisabledByDefaultAndHarmlessWhenFast) {
  thread::Executor executor(2, /*num_nodes=*/1);
  EXPECT_EQ(executor.watchdog_timeout_ms(), 0);
  executor.set_watchdog_timeout(10'000);
  std::atomic<int> ran{0};
  ASSERT_TRUE(executor
                  .Dispatch(2,
                            [&](const thread::WorkerContext&) {
                              ran.fetch_add(1);
                            })
                  .ok());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(executor.poisoned());
}

}  // namespace
}  // namespace mmjoin
