// JoinService tests: admission control (queue backpressure, per-tenant
// concurrency caps, memory quotas), concurrent progress across lanes,
// per-job EXPLAIN attribution, and shutdown semantics -- plus the
// concurrency sweep's cornerstone: many client threads hammering one
// core::Joiner (and one JoinService) must produce results bit-identical
// to serial runs. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/joiner.h"
#include "join/join_algorithm.h"
#include "join/reference.h"
#include "service/join_service.h"
#include "workload/generator.h"

namespace mmjoin::service {
namespace {

ServiceOptions SmallServiceOptions(int num_lanes = 2) {
  ServiceOptions options;
  options.joiner.num_nodes = 2;
  options.joiner.num_threads = 2;
  options.num_lanes = num_lanes;
  return options;
}

// A sink whose Consume blocks every worker until Release(): holds a job
// mid-probe so tests can pin a lane deterministically.
class GateSink final : public join::MatchSink {
 public:
  void Consume(int /*tid*/, Tuple /*build*/, Tuple /*probe*/) override {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
  }

  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return entered_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(JoinServiceTest, OptionsValidate) {
  ServiceOptions options = SmallServiceOptions();
  EXPECT_TRUE(options.Validate().ok());
  options.num_lanes = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallServiceOptions();
  options.max_queue_depth = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallServiceOptions();
  options.default_quota.max_concurrent_jobs = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallServiceOptions();
  options.default_quota.mem_budget_bytes = 1024;  // below kMinMemBudgetBytes
  EXPECT_FALSE(options.Validate().ok());
}

TEST(JoinServiceTest, RunsOneJobAndMatchesReference) {
  auto service = JoinService::Create(SmallServiceOptions()).value();
  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 20000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(service->system(), 80000, 20000, 2).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());

  JobSpec spec;
  spec.algorithm = join::Algorithm::kCPRL;
  spec.build = &build;
  spec.probe = &probe;
  const JobId id = service->SubmitJob(spec).value();
  const JobResult result = service->Wait(id).value();

  EXPECT_EQ(result.id, id);
  EXPECT_EQ(result.tenant, "default");
  EXPECT_EQ(result.join.matches, expected.matches);
  EXPECT_EQ(result.join.checksum, expected.checksum);
  EXPECT_GE(result.queue_wait_ns, 0);
  EXPECT_GT(result.run_ns, 0);
  EXPECT_GE(result.lane, 0);
  // Per-job EXPLAIN: the window covers exactly this job, so the join.runs
  // delta is 1, not "every run since process start".
  EXPECT_EQ(result.explain.algorithm, "CPRL");
  ASSERT_NE(result.explain.counters.find("join.runs"),
            result.explain.counters.end());
  EXPECT_EQ(result.explain.counters.at("join.runs"), 1u);

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(JoinServiceTest, WaitOnUnknownIdIsNotFound) {
  auto service = JoinService::Create(SmallServiceOptions()).value();
  const auto result = service->Wait(12345);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(JoinServiceTest, ConcurrentJobsProgressSimultaneously) {
  auto service = JoinService::Create(SmallServiceOptions(/*num_lanes=*/2))
                     .value();
  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 5000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(service->system(), 20000, 5000, 2).value();

  // Two jobs each blocked inside their own sink: both lanes must be
  // running them at the same time for both gates to report entry.
  GateSink gate_a, gate_b;
  JobSpec spec;
  spec.algorithm = join::Algorithm::kCPRL;
  spec.build = &build;
  spec.probe = &probe;
  spec.config.sink = &gate_a;
  const JobId job_a = service->SubmitJob(spec).value();
  spec.config.sink = &gate_b;
  const JobId job_b = service->SubmitJob(spec).value();

  gate_a.WaitUntilEntered();
  gate_b.WaitUntilEntered();
  EXPECT_GE(service->stats().peak_running, 2);
  gate_a.Release();
  gate_b.Release();
  EXPECT_TRUE(service->Wait(job_a).ok());
  EXPECT_TRUE(service->Wait(job_b).ok());
}

TEST(JoinServiceTest, FullQueueRejectsWithRetryAfter) {
  ServiceOptions options = SmallServiceOptions(/*num_lanes=*/1);
  options.max_queue_depth = 1;
  auto service = JoinService::Create(options).value();
  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 2000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(service->system(), 8000, 2000, 2).value();

  GateSink gate;
  JobSpec blocked;
  blocked.algorithm = join::Algorithm::kCPRL;
  blocked.build = &build;
  blocked.probe = &probe;
  blocked.config.sink = &gate;
  const JobId running = service->SubmitJob(blocked).value();
  gate.WaitUntilEntered();  // the lane popped it; the queue is empty again

  JobSpec spec;
  spec.algorithm = join::Algorithm::kCPRL;
  spec.build = &build;
  spec.probe = &probe;
  const JobId queued = service->SubmitJob(spec).value();  // fills the queue

  const auto rejected = service->SubmitJob(spec);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("retry after"),
            std::string::npos);
  EXPECT_EQ(service->stats().rejected, 1u);

  gate.Release();
  EXPECT_TRUE(service->Wait(running).ok());
  EXPECT_TRUE(service->Wait(queued).ok());
}

TEST(JoinServiceTest, TenantConcurrencyQuotaIsEnforced) {
  ServiceOptions options = SmallServiceOptions(/*num_lanes=*/1);
  auto service = JoinService::Create(options).value();
  TenantQuota one_job;
  one_job.max_concurrent_jobs = 1;
  ASSERT_TRUE(service->SetTenantQuota("capped", one_job).ok());

  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 2000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(service->system(), 8000, 2000, 2).value();

  GateSink gate;
  JobSpec spec;
  spec.tenant = "capped";
  spec.algorithm = join::Algorithm::kCPRL;
  spec.build = &build;
  spec.probe = &probe;
  spec.config.sink = &gate;
  const JobId running = service->SubmitJob(spec).value();
  gate.WaitUntilEntered();

  // Same tenant: over its cap. Another tenant: admitted (queued).
  JobSpec second = spec;
  second.config.sink = nullptr;
  const auto rejected = service->SubmitJob(second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  second.tenant = "other";
  const JobId other = service->SubmitJob(second).value();

  // Quotas cannot change under a tenant with active jobs.
  EXPECT_EQ(service->SetTenantQuota("capped", one_job).code(),
            StatusCode::kFailedPrecondition);

  gate.Release();
  EXPECT_TRUE(service->Wait(running).ok());
  EXPECT_TRUE(service->Wait(other).ok());

  // Idle again: both the resubmission and the quota change succeed.
  EXPECT_TRUE(service->SetTenantQuota("capped", one_job).ok());
  const JobId again = service->SubmitJob(second).value();
  EXPECT_TRUE(service->Wait(again).ok());
}

TEST(JoinServiceTest, TenantMemoryQuotaRejectsOversizedJoin) {
  ServiceOptions options = SmallServiceOptions(/*num_lanes=*/1);
  auto service = JoinService::Create(options).value();
  TenantQuota tiny;
  tiny.mem_budget_bytes = join::JoinConfig::kMinMemBudgetBytes;  // 1 MiB
  ASSERT_TRUE(service->SetTenantQuota("tiny", tiny).ok());

  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 200000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(service->system(), 400000, 200000, 2).value();

  // NOP's hash table alone exceeds the tenant budget, and (unlike the
  // PR*/CPR* family) NOP cannot degrade -- the job must fail with
  // ResourceExhausted charged against the *tenant's* tracker.
  JobSpec spec;
  spec.tenant = "tiny";
  spec.algorithm = join::Algorithm::kNOP;
  spec.build = &build;
  spec.probe = &probe;
  const JobId id = service->SubmitJob(spec).value();
  const auto result = service->Wait(id);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service->stats().failed, 1u);

  // The failed join released every reservation: an in-budget join from the
  // same tenant still runs.
  workload::Relation small_build =
      workload::MakeDenseBuild(service->system(), 2000, 3).value();
  workload::Relation small_probe =
      workload::MakeUniformProbe(service->system(), 4000, 2000, 4).value();
  spec.build = &small_build;
  spec.probe = &small_probe;
  const JobId ok_id = service->SubmitJob(spec).value();
  EXPECT_TRUE(service->Wait(ok_id).ok());
}

TEST(JoinServiceTest, ShutdownDrainsAndRejectsNewWork) {
  ServiceOptions options = SmallServiceOptions();
  options.default_quota.max_concurrent_jobs = 16;  // quota is not under test
  auto service = JoinService::Create(options).value();
  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 5000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(service->system(), 20000, 5000, 2).value();

  JobSpec spec;
  spec.algorithm = join::Algorithm::kCPRL;
  spec.build = &build;
  spec.probe = &probe;
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(service->SubmitJob(spec).value());
  service->Shutdown();
  // Queued jobs were drained, not dropped; their results stay claimable.
  for (const JobId id : ids) EXPECT_TRUE(service->Wait(id).ok());
  const auto after = service->SubmitJob(spec);
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
}

// The concurrency sweep's witness: mixed algorithms from many service
// clients must be bit-identical to the serial reference.
TEST(JoinServiceTest, MixedAlgorithmsFromManyThreadsMatchReference) {
  ServiceOptions options = SmallServiceOptions(/*num_lanes=*/3);
  options.default_quota.max_concurrent_jobs = 64;
  auto service = JoinService::Create(options).value();
  workload::Relation build =
      workload::MakeDenseBuild(service->system(), 20000, 1).value();
  workload::Relation probe =
      workload::MakeZipfProbe(service->system(), 80000, 20000, 0.8, 2).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());

  const join::Algorithm algorithms[] = {
      join::Algorithm::kCPRL, join::Algorithm::kPRO, join::Algorithm::kNOP,
      join::Algorithm::kNOPA, join::Algorithm::kPRB};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        JobSpec spec;
        spec.tenant = "client" + std::to_string(t);
        spec.algorithm = algorithms[(t * 3 + i) % 5];
        spec.build = &build;
        spec.probe = &probe;
        const auto id = service->SubmitJob(spec);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        const auto result = service->Wait(*id);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result->join.matches, expected.matches);
        EXPECT_EQ(result->join.checksum, expected.checksum);
      }
    });
  }
  for (auto& client : clients) client.join();
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
}

// One Joiner shared by N raw client threads: Run serializes dispatches on
// the single pool, and every result must still be bit-identical to the
// serial run -- the regression test for the steal-metrics flush that used
// to race the next run's queue re-seed.
TEST(JoinServiceTest, SharedJoinerIsThreadSafeAndDeterministic) {
  core::JoinerOptions options;
  options.num_nodes = 2;
  options.num_threads = 4;
  core::Joiner joiner(options);
  workload::Relation build =
      workload::MakeDenseBuild(joiner.system(), 20000, 5).value();
  workload::Relation probe =
      workload::MakeUniformProbe(joiner.system(), 80000, 20000, 6).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());

  const join::Algorithm algorithms[] = {
      join::Algorithm::kCPRL, join::Algorithm::kPRO, join::Algorithm::kNOP};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        const auto result =
            joiner.Run(algorithms[(t + i) % 3], build, probe);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result->matches, expected.matches);
        EXPECT_EQ(result->checksum, expected.checksum);
      }
    });
  }
  for (auto& client : clients) client.join();
}

}  // namespace
}  // namespace mmjoin::service
