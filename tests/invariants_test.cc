// Invariant enforcement (fatal-check paths) and cross-call determinism
// guarantees.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "hash/linear_probing_table.h"
#include "numa/system.h"
#include "tpch/generator.h"
#include "util/cli.h"
#include "workload/generator.h"

namespace mmjoin {
namespace {

using InvariantDeathTest = ::testing::Test;

// GTEST_FLAG_SET is unavailable before GoogleTest 1.12; the flag variable
// itself works on every version.
void UseThreadsafeDeathTests() {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
}

TEST(InvariantDeathTest, LinearTableResetBeyondAllocationAborts) {
  UseThreadsafeDeathTests();
  numa::NumaSystem system(1);
  hash::LinearProbingTable<hash::IdentityHash> table(
      &system, 100, numa::Placement::kLocal);
  EXPECT_DEATH(table.Reset(1 << 20), "check failed");
}

TEST(InvariantDeathTest, CliRejectsMalformedInteger) {
  UseThreadsafeDeathTests();
  const char* argv[] = {"prog", "--threads=abc"};
  CommandLine cli(2, const_cast<char**>(argv));
  EXPECT_DEATH(cli.GetInt("threads", 1), "check failed");
}

TEST(InvariantDeathTest, NumaFreeOfUnknownPointerAborts) {
  UseThreadsafeDeathTests();
  numa::NumaSystem system(2);
  int local = 0;
  EXPECT_DEATH(system.Free(&local), "check failed");
}

// --- Determinism guarantees --------------------------------------------------

TEST(Determinism, TpchGenerationIsBitwiseStable) {
  numa::NumaSystem system(4);
  tpch::GeneratorOptions options;
  options.lineitem_rows = 50000;
  options.part_rows = 2000;
  options.seed = 99;
  tpch::LineitemTable a = tpch::GenerateLineitem(&system, options);
  tpch::LineitemTable b = tpch::GenerateLineitem(&system, options);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  EXPECT_EQ(std::memcmp(a.l_partkey(), b.l_partkey(),
                        a.num_tuples() * sizeof(Tuple)),
            0);
  EXPECT_EQ(std::memcmp(a.l_shipmode(), b.l_shipmode(), a.num_tuples()), 0);
  EXPECT_EQ(std::memcmp(a.l_quantity(), b.l_quantity(),
                        a.num_tuples() * sizeof(uint32_t)),
            0);

  tpch::PartTable pa = tpch::GeneratePart(&system, options);
  tpch::PartTable pb = tpch::GeneratePart(&system, options);
  EXPECT_EQ(std::memcmp(pa.p_brand(), pb.p_brand(), pa.num_tuples()), 0);
  EXPECT_EQ(std::memcmp(pa.p_container(), pb.p_container(),
                        pa.num_tuples()),
            0);
}

TEST(Determinism, WorkloadsStableAcrossSystems) {
  // The same seed must produce identical relations even from differently
  // configured NumaSystems (placement must not leak into content).
  numa::NumaSystem a_system(1, mem::PagePolicy::kSmall);
  numa::NumaSystem b_system(8, mem::PagePolicy::kHuge);
  workload::Relation a = workload::MakeZipfProbe(&a_system, 20000, 1000,
                                                 0.9, 123).value();
  workload::Relation b = workload::MakeZipfProbe(&b_system, 20000, 1000,
                                                 0.9, 123).value();
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Tuple)), 0);
}

TEST(Determinism, ConcurrentAllocationRegistryStress) {
  // Allocate/free from many threads; NodeOf must stay consistent and no
  // region bookkeeping must corrupt.
  numa::NumaSystem system(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&system, t] {
      for (int i = 0; i < 200; ++i) {
        void* p = system.Allocate(4096 * (1 + (i % 7)),
                                  numa::Placement::kLocal, t % 4);
        ASSERT_EQ(system.NodeOf(p), t % 4);
        system.Free(p);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace mmjoin
