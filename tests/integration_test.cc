// Cross-module integration tests: joins under NUMA accounting, pass-count
// overrides, Q19 across all thirteen algorithms, combined workload
// stressors.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "join/join_algorithm.h"
#include "join/reference.h"
#include "numa/system.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "workload/generator.h"

namespace mmjoin {
namespace {

TEST(NumaIntegration, CprlJoinHasZeroRemotePartitionWrites) {
  // The paper's core CPRL claim, end-to-end through the real join: the
  // partition phase performs no remote writes at all. (The join phase's
  // scratch tables are node-local too, so total remote writes stay 0.)
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeDenseBuild(&system, 1 << 16, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, 1 << 18, 1 << 16, 2).value();
  system.EnableAccounting();

  join::JoinConfig config;
  config.num_threads = 4;
  const join::JoinResult result =
      join::RunJoin(join::Algorithm::kCPRL, &system, config, build, probe).value();
  EXPECT_EQ(result.matches, probe.size());
  EXPECT_EQ(system.counters()->TotalRemoteWriteBytes(), 0u);
  EXPECT_GT(system.counters()->TotalRemoteReadBytes(), 0u);  // join phase
}

TEST(NumaIntegration, ProJoinWritesRemotely) {
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeDenseBuild(&system, 1 << 16, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, 1 << 18, 1 << 16, 2).value();
  system.EnableAccounting();

  join::JoinConfig config;
  config.num_threads = 4;
  join::RunJoin(join::Algorithm::kPRO, &system, config, build, probe).value();
  EXPECT_GT(system.counters()->TotalRemoteWriteBytes(),
            system.counters()->TotalLocalWriteBytes());
}

TEST(NumaIntegration, AccountingDoesNotChangeResults) {
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeDenseBuild(&system, 20000, 3).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, 100000, 20000, 4).value();
  join::JoinConfig config;
  config.num_threads = 4;

  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    system.DisableAccounting();
    const join::JoinResult plain =
        join::RunJoin(algorithm, &system, config, build, probe).value();
    system.EnableAccounting();
    const join::JoinResult counted =
        join::RunJoin(algorithm, &system, config, build, probe).value();
    EXPECT_EQ(plain.matches, counted.matches) << join::NameOf(algorithm);
    EXPECT_EQ(plain.checksum, counted.checksum) << join::NameOf(algorithm);
  }
  system.DisableAccounting();
}

TEST(PassOverride, ProTwoPassMatchesOnePass) {
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeDenseBuild(&system, 30000, 5).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, 120000, 30000, 6).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());

  for (const uint32_t passes : {1u, 2u}) {
    join::JoinConfig config;
    config.num_threads = 4;
    config.num_passes = passes;
    config.radix_bits = 8;
    const join::JoinResult result =
        join::RunJoin(join::Algorithm::kPRO, &system, config, build, probe).value();
    EXPECT_EQ(result.matches, expected.matches) << passes;
    EXPECT_EQ(result.checksum, expected.checksum) << passes;
  }
}

TEST(PassOverride, PrbOnePassMatchesTwoPass) {
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeDenseBuild(&system, 30000, 7).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, 90000, 30000, 8).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());
  join::JoinConfig config;
  config.num_threads = 3;
  config.num_passes = 1;
  const join::JoinResult result =
      join::RunJoin(join::Algorithm::kPRB, &system, config, build, probe).value();
  EXPECT_EQ(result.matches, expected.matches);
  EXPECT_EQ(result.checksum, expected.checksum);
}

class Q19AllJoinsTest : public ::testing::TestWithParam<join::Algorithm> {};

TEST_P(Q19AllJoinsTest, EveryAlgorithmAnswersQ19) {
  // The paper only evaluates 4 joins on Q19; all 13 must work.
  static numa::NumaSystem* system = new numa::NumaSystem(4);
  tpch::GeneratorOptions options;
  options.lineitem_rows = 120000;
  options.part_rows = 6000;
  options.seed = 11;
  static tpch::LineitemTable* lineitem =
      new tpch::LineitemTable(tpch::GenerateLineitem(system, options));
  static tpch::PartTable* part =
      new tpch::PartTable(tpch::GeneratePart(system, options));
  static const double reference = tpch::Q19Reference(*lineitem, *part);

  const tpch::Q19Result result =
      tpch::RunQ19(system, *lineitem, *part, GetParam(), 4);
  EXPECT_NEAR(result.revenue, reference, std::abs(reference) * 1e-9 + 1e-6)
      << join::NameOf(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, Q19AllJoinsTest, ::testing::ValuesIn(join::AllAlgorithms()),
    [](const ::testing::TestParamInfo<join::Algorithm>& info) {
      return std::string(join::NameOf(info.param));
    });

TEST(Stress, SkewedSparseManyThreads) {
  // Combined stressor: sparse domain + skew + more threads than partitions.
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeSparseBuild(&system, 4096, 5, 13).value();
  workload::Relation probe =
      workload::MakeZipfProbe(&system, 50000, 4096, 0.9, 14).value();
  // Zipf ranks reference the dense domain [0, 4096); remap probe keys onto
  // existing sparse build keys so matches occur.
  for (uint64_t i = 0; i < probe.size(); ++i) {
    probe.data()[i].key = build.data()[probe.data()[i].key].key;
  }
  probe.set_key_domain(build.key_domain());

  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    join::JoinConfig config;
    config.num_threads = 8;
    config.skew_task_factor = 2;
    const join::JoinResult result =
        join::RunJoin(algorithm, &system, config, build, probe).value();
    EXPECT_EQ(result.matches, expected.matches) << join::NameOf(algorithm);
    EXPECT_EQ(result.checksum, expected.checksum)
        << join::NameOf(algorithm);
  }
}

TEST(Stress, RepeatedRunsAreDeterministic) {
  numa::NumaSystem system(4);
  workload::Relation build = workload::MakeDenseBuild(&system, 10000, 15).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, 50000, 10000, 16).value();
  join::JoinConfig config;
  config.num_threads = 4;
  for (const join::Algorithm algorithm :
       {join::Algorithm::kCPRL, join::Algorithm::kNOP,
        join::Algorithm::kMWAY}) {
    const join::JoinResult first =
        join::RunJoin(algorithm, &system, config, build, probe).value();
    for (int i = 0; i < 3; ++i) {
      const join::JoinResult again =
          join::RunJoin(algorithm, &system, config, build, probe).value();
      EXPECT_EQ(again.matches, first.matches);
      EXPECT_EQ(again.checksum, first.checksum);
    }
  }
}

}  // namespace
}  // namespace mmjoin
