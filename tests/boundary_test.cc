// Boundary-condition tests: extreme key values, single-tuple relations,
// direct exercise of the parallel CHT build protocol, and chunk-boundary
// exactness of the NUMA placements.

#include <gtest/gtest.h>

#include <vector>

#include "core/joiner.h"
#include "hash/concise_table.h"
#include "join/join_algorithm.h"
#include "join/reference.h"
#include "numa/system.h"
#include "thread/thread_team.h"
#include "workload/relation.h"

namespace mmjoin {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

// Keys at the top of the representable range (kEmptyKey - 1 is the largest
// legal key) must work in every algorithm: they stress the sign-bit
// handling of the SIMD sort, hash masking, and partition functions.
TEST(Boundary, MaxLegalKeysJoinEverywhere) {
  workload::Relation build(System(), 3);
  build.data()[0] = Tuple{kEmptyKey - 1, 1};
  build.data()[1] = Tuple{kEmptyKey - 2, 2};
  build.data()[2] = Tuple{0, 3};
  build.set_key_domain(kEmptyKey);  // sparse: domain = 2^32 - 1

  workload::Relation probe(System(), 6);
  probe.data()[0] = Tuple{kEmptyKey - 1, 10};
  probe.data()[1] = Tuple{kEmptyKey - 2, 20};
  probe.data()[2] = Tuple{0, 30};
  probe.data()[3] = Tuple{kEmptyKey - 1, 40};
  probe.data()[4] = Tuple{1, 50};           // miss
  probe.data()[5] = Tuple{kEmptyKey - 3, 60};  // miss
  probe.set_key_domain(kEmptyKey);

  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());
  EXPECT_EQ(expected.matches, 4u);

  join::JoinConfig config;
  config.num_threads = 2;
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    // Array joins over a 2^32-wide domain would need a 4 GB table; the
    // registry marks them dense-only, so skip as a planner would.
    if (join::InfoOf(algorithm).requires_dense_keys) continue;
    const join::JoinResult result =
        join::RunJoin(algorithm, System(), config, build, probe).value();
    EXPECT_EQ(result.matches, expected.matches) << join::NameOf(algorithm);
    EXPECT_EQ(result.checksum, expected.checksum)
        << join::NameOf(algorithm);
  }
}

TEST(Boundary, EmptyRelationsYieldZeroMatches) {
  Tuple one{5, 50};
  join::JoinConfig config;
  config.num_threads = 4;
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const auto join = join::CreateJoin(algorithm);
    const join::JoinResult empty_probe =
        join->Run(System(), config, ConstTupleSpan(&one, 1),
                  ConstTupleSpan(&one, 0), /*key_domain=*/6).value();
    const join::JoinResult empty_build =
        join->Run(System(), config, ConstTupleSpan(&one, 0),
                  ConstTupleSpan(&one, 1), /*key_domain=*/6).value();
    const join::JoinResult both_empty =
        join->Run(System(), config, ConstTupleSpan(&one, 0),
                  ConstTupleSpan(&one, 0), /*key_domain=*/6).value();
    EXPECT_EQ(empty_probe.matches, 0u) << join::NameOf(algorithm);
    EXPECT_EQ(empty_build.matches, 0u) << join::NameOf(algorithm);
    EXPECT_EQ(both_empty.matches, 0u) << join::NameOf(algorithm);
    EXPECT_EQ(both_empty.checksum, 0u) << join::NameOf(algorithm);
  }
}

TEST(Boundary, SingleTupleRelations) {
  workload::Relation build(System(), 1);
  build.data()[0] = Tuple{7, 70};
  build.set_key_domain(8);
  workload::Relation probe(System(), 1);
  probe.data()[0] = Tuple{7, 700};
  probe.set_key_domain(8);

  join::JoinConfig config;
  config.num_threads = 4;  // more threads than tuples
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const join::JoinResult result =
        join::RunJoin(algorithm, System(), config, build, probe).value();
    EXPECT_EQ(result.matches, 1u) << join::NameOf(algorithm);
    EXPECT_EQ(result.checksum, 770u) << join::NameOf(algorithm);
  }
}

// The same degenerate shapes must also survive the full public entry point
// (validation, failpoint checks, executor dispatch) -- not just the raw
// algorithm objects the spans above exercise.
TEST(Boundary, JoinerHandlesEmptyAndSingleTupleRelations) {
  core::Joiner joiner;
  workload::Relation empty(joiner.system(), 0);
  empty.set_key_domain(8);
  workload::Relation single(joiner.system(), 1);
  single.data()[0] = Tuple{3, 30};
  single.set_key_domain(8);

  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const auto no_build = joiner.Run(algorithm, empty, single);
    ASSERT_TRUE(no_build.ok()) << join::NameOf(algorithm) << ": "
                               << no_build.status().ToString();
    EXPECT_EQ(no_build.value().matches, 0u) << join::NameOf(algorithm);

    const auto no_probe = joiner.Run(algorithm, single, empty);
    ASSERT_TRUE(no_probe.ok()) << join::NameOf(algorithm) << ": "
                               << no_probe.status().ToString();
    EXPECT_EQ(no_probe.value().matches, 0u) << join::NameOf(algorithm);

    const auto both = joiner.Run(algorithm, single, single);
    ASSERT_TRUE(both.ok()) << join::NameOf(algorithm) << ": "
                           << both.status().ToString();
    EXPECT_EQ(both.value().matches, 1u) << join::NameOf(algorithm);
    EXPECT_EQ(both.value().checksum, 60u) << join::NameOf(algorithm);
  }
}

// A build side that is one giant duplicate group (every key equal) is the
// worst case for chaining and probe termination. Array joins require unique
// build keys by construction, so they sit this one out, as a planner would.
TEST(Boundary, JoinerHandlesAllDuplicateBuildKeys) {
  constexpr uint64_t kBuild = 64;
  constexpr uint64_t kProbe = 256;
  core::Joiner joiner;
  workload::Relation build(joiner.system(), kBuild);
  workload::Relation probe(joiner.system(), kProbe);
  for (uint64_t i = 0; i < kBuild; ++i) {
    build.data()[i] = Tuple{7, static_cast<uint32_t>(i)};
  }
  for (uint64_t i = 0; i < kProbe; ++i) {
    probe.data()[i] = Tuple{7, static_cast<uint32_t>(i)};
  }
  build.set_key_domain(8);
  probe.set_key_domain(8);

  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());
  EXPECT_EQ(expected.matches, kBuild * kProbe);

  join::JoinConfig config;
  config.build_unique = false;
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    if (join::InfoOf(algorithm).requires_dense_keys) continue;
    const auto result = joiner.Run(algorithm, config, build, probe);
    ASSERT_TRUE(result.ok()) << join::NameOf(algorithm) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result.value().matches, expected.matches)
        << join::NameOf(algorithm);
    EXPECT_EQ(result.value().checksum, expected.checksum)
        << join::NameOf(algorithm);
  }
}

// Memory-budget validation boundaries: zero and sub-minimum budgets are
// configuration errors (InvalidArgument, caught before any work), at both
// the per-join config and the Joiner-options level; the minimum itself is
// accepted.
TEST(Boundary, MemBudgetValidationLimits) {
  workload::Relation build(System(), 1024);
  workload::Relation probe(System(), 4096);
  for (uint64_t i = 0; i < build.size(); ++i) {
    build.data()[i] = Tuple{static_cast<uint32_t>(i),
                            static_cast<uint32_t>(i)};
  }
  for (uint64_t i = 0; i < probe.size(); ++i) {
    probe.data()[i] = Tuple{static_cast<uint32_t>(i % 1024),
                            static_cast<uint32_t>(i)};
  }
  build.set_key_domain(1024);
  probe.set_key_domain(1024);

  join::JoinConfig zero;
  zero.mem_budget_bytes = 0;
  EXPECT_EQ(join::RunJoin(join::Algorithm::kPRO, System(), zero, build, probe)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  join::JoinConfig tiny;
  tiny.mem_budget_bytes = join::JoinConfig::kMinMemBudgetBytes - 1;
  EXPECT_EQ(join::RunJoin(join::Algorithm::kPRO, System(), tiny, build, probe)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  join::JoinConfig minimum;
  minimum.mem_budget_bytes = join::JoinConfig::kMinMemBudgetBytes;
  EXPECT_TRUE(
      join::RunJoin(join::Algorithm::kPRO, System(), minimum, build, probe)
          .ok());

  core::JoinerOptions zero_opts;
  zero_opts.mem_budget_bytes = 0;
  EXPECT_EQ(core::Joiner::Create(zero_opts).status().code(),
            StatusCode::kInvalidArgument);

  core::JoinerOptions tiny_opts;
  tiny_opts.mem_budget_bytes = 1024;
  EXPECT_EQ(core::Joiner::Create(tiny_opts).status().code(),
            StatusCode::kInvalidArgument);

  core::JoinerOptions min_opts;
  min_opts.mem_budget_bytes = join::JoinConfig::kMinMemBudgetBytes;
  EXPECT_TRUE(core::Joiner::Create(min_opts).ok());
}

// Drives the CHT three-phase parallel build protocol directly (outside
// CHTJ): threads mark disjoint group-aligned regions, one thread
// finalizes, then parallel placement.
TEST(Boundary, ConciseTableParallelRegionBuild) {
  constexpr int kThreads = 4;
  constexpr uint64_t kTuples = 32768;
  hash::ConciseHashTable table(System(), kTuples, numa::Placement::kLocal);

  // Pre-partition tuples by bucket region (identity hash: key == bucket
  // for keys < num_buckets).
  const uint64_t buckets = table.num_buckets();
  std::vector<std::vector<Tuple>> by_region(kThreads);
  for (uint64_t k = 0; k < kTuples; ++k) {
    // Spread keys over the full bucket range so every region is hit.
    const uint32_t key = static_cast<uint32_t>(k * (buckets / kTuples));
    for (int t = 0; t < kThreads; ++t) {
      const auto region = table.RegionForThread(t, kThreads);
      if (key >= region.begin_bucket && key < region.end_bucket) {
        by_region[t].push_back(Tuple{key, static_cast<uint32_t>(k)});
        break;
      }
    }
  }

  std::vector<std::vector<uint64_t>> bucket_of(kThreads);
  std::vector<std::vector<Tuple>> overflow(kThreads);
  thread::Barrier barrier(kThreads);
  thread::RunTeam(kThreads, [&](int tid) {
    bucket_of[tid].resize(by_region[tid].size());
    table.MarkBits(
        ConstTupleSpan(by_region[tid].data(), by_region[tid].size()),
        table.RegionForThread(tid, kThreads), bucket_of[tid].data(),
        &overflow[tid]);
    barrier.ArriveAndWait();
    if (tid == 0) {
      table.FinalizePrefix();
      std::vector<Tuple> merged;
      for (const auto& of : overflow) {
        merged.insert(merged.end(), of.begin(), of.end());
      }
      table.SetOverflow(std::move(merged));
    }
    barrier.ArriveAndWait();
    table.Place(ConstTupleSpan(by_region[tid].data(), by_region[tid].size()),
                bucket_of[tid].data());
  });

  for (int t = 0; t < kThreads; ++t) {
    for (const Tuple& tuple : by_region[t]) {
      uint32_t payload = ~0u;
      ASSERT_EQ(table.ProbeUnique(tuple.key,
                                  [&](Tuple found) {
                                    payload = found.payload;
                                  }),
                1u)
          << "key " << tuple.key;
      ASSERT_EQ(payload, tuple.payload);
    }
  }
}

TEST(Boundary, ChunkedPlacementBoundariesExact) {
  numa::Topology topo(4);
  const std::size_t total = 4096;  // chunk = 1024
  EXPECT_EQ(topo.NodeOfOffset(numa::Placement::kChunkedRoundRobin, 0, 1023,
                              total),
            0);
  EXPECT_EQ(topo.NodeOfOffset(numa::Placement::kChunkedRoundRobin, 0, 1024,
                              total),
            1);
  EXPECT_EQ(topo.NodeOfOffset(numa::Placement::kChunkedRoundRobin, 0, 4095,
                              total),
            3);
  // Non-divisible total: ceil-chunking keeps every offset in range.
  const std::size_t odd_total = 4097;  // chunk = 1025
  for (std::size_t off = 0; off < odd_total; off += 7) {
    const int node = topo.NodeOfOffset(numa::Placement::kChunkedRoundRobin,
                                       0, off, odd_total);
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 4);
  }
}

}  // namespace
}  // namespace mmjoin
