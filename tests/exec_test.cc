// Tests for the vectorized execution layer (src/exec/): DataChunk and
// selection vectors, dynamic chunk compaction, the pipeline driver, and the
// differential check of the pipelined TPC-H Q19 against the scalar
// reference across all thirteen join algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/compaction.h"
#include "exec/data_chunk.h"
#include "exec/operator.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "join/join_defs.h"
#include "join/reference.h"
#include "numa/system.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "workload/generator.h"

namespace mmjoin::exec {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

// --- DataChunk --------------------------------------------------------------

TEST(DataChunk, StoresColumnsAndTracksLogicalRows) {
  DataChunk chunk(2);
  EXPECT_EQ(chunk.num_columns(), 2);
  for (uint32_t i = 0; i < 100; ++i) {
    chunk.column(0)[i] = i;
    chunk.column(1)[i] = 1000 + i;
  }
  chunk.set_size(100);
  EXPECT_EQ(chunk.size(), 100u);
  EXPECT_EQ(chunk.ActiveRows(), 100u);
  EXPECT_FALSE(chunk.has_selection());
  EXPECT_FALSE(chunk.Empty());
  EXPECT_EQ(chunk.RowAt(42), 42u);  // identity without a selection
  EXPECT_DOUBLE_EQ(chunk.Density(), 100.0 / kChunkCapacity);
  EXPECT_EQ(chunk.Remaining(), kChunkCapacity - 100);

  chunk.Reset();
  EXPECT_EQ(chunk.size(), 0u);
  EXPECT_TRUE(chunk.Empty());
}

TEST(DataChunk, SelectionNarrowsThenCompactGathers) {
  DataChunk chunk(2);
  for (uint32_t i = 0; i < 100; ++i) {
    chunk.column(0)[i] = i;
    chunk.column(1)[i] = 1000 + i;
  }
  chunk.set_size(100);

  // Select the even physical rows.
  uint32_t* sel = chunk.mutable_selection();
  for (uint32_t i = 0; i < 50; ++i) sel[i] = 2 * i;
  chunk.SetSelectionSize(50);
  EXPECT_TRUE(chunk.has_selection());
  EXPECT_EQ(chunk.ActiveRows(), 50u);
  EXPECT_EQ(chunk.RowAt(3), 6u);
  EXPECT_DOUBLE_EQ(chunk.Density(), 50.0 / kChunkCapacity);

  chunk.Compact();
  EXPECT_FALSE(chunk.has_selection());
  EXPECT_EQ(chunk.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(chunk.column(0)[i], 2 * i);
    EXPECT_EQ(chunk.column(1)[i], 1000 + 2 * i);
  }
  chunk.Compact();  // idempotent once the selection is gone
  EXPECT_EQ(chunk.size(), 50u);
}

TEST(DataChunk, AppendActiveCopiesDenseAndSelectedSources) {
  DataChunk dense(2);
  for (uint32_t i = 0; i < 10; ++i) {
    dense.column(0)[i] = i;
    dense.column(1)[i] = 100 + i;
  }
  dense.set_size(10);

  DataChunk sparse(2);
  for (uint32_t i = 0; i < 10; ++i) {
    sparse.column(0)[i] = 50 + i;
    sparse.column(1)[i] = 500 + i;
  }
  sparse.set_size(10);
  uint32_t* sel = sparse.mutable_selection();
  sel[0] = 1;
  sel[1] = 4;
  sel[2] = 9;
  sparse.SetSelectionSize(3);

  DataChunk out(2);
  out.AppendActive(dense, 2, 3);   // physical rows 2,3,4 (memcpy path)
  out.AppendActive(sparse, 1, 2);  // logical rows 1,2 -> physical 4,9
  ASSERT_EQ(out.size(), 5u);
  const uint32_t expected_keys[] = {2, 3, 4, 54, 59};
  const uint32_t expected_payloads[] = {102, 103, 104, 504, 509};
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out.column(0)[i], expected_keys[i]) << i;
    EXPECT_EQ(out.column(1)[i], expected_payloads[i]) << i;
  }
}

TEST(RefineSelection, ComposesAcrossFilters) {
  DataChunk chunk(1);
  for (uint32_t i = 0; i < 100; ++i) chunk.column(0)[i] = i;
  chunk.set_size(100);

  // First filter: multiples of 3 (installs the selection).
  RefineSelection(&chunk, [](const DataChunk& c, uint32_t row) {
    return c.column(0)[row] % 3 == 0;
  });
  EXPECT_EQ(chunk.ActiveRows(), 34u);  // 0,3,...,99
  // Second filter: also even -> multiples of 6 (refines in place).
  RefineSelection(&chunk, [](const DataChunk& c, uint32_t row) {
    return c.column(0)[row] % 2 == 0;
  });
  ASSERT_EQ(chunk.ActiveRows(), 17u);  // 0,6,...,96
  for (uint32_t i = 0; i < chunk.ActiveRows(); ++i) {
    EXPECT_EQ(chunk.column(0)[chunk.RowAt(i)], 6 * i);
  }
}

// --- ChunkCompactor ---------------------------------------------------------

// Fills `chunk` with `rows` physical rows tagged by `base` in every column.
void FillChunk(DataChunk* chunk, uint32_t rows, uint32_t base) {
  chunk->Reset();
  for (int c = 0; c < chunk->num_columns(); ++c) {
    for (uint32_t i = 0; i < rows; ++i) chunk->column(c)[i] = base + i;
  }
  chunk->set_size(rows);
}

TEST(ChunkCompactor, ThresholdZeroNeverCompacts) {
  ChunkCompactor compactor(2, /*density_threshold=*/0.0);
  DataChunk chunk(2);
  uint64_t emitted_rows = 0;
  uint64_t emitted_chunks = 0;
  for (int i = 0; i < 5; ++i) {
    FillChunk(&chunk, 10, static_cast<uint32_t>(i) * 10);  // density ~1%
    compactor.Push(&chunk, [&](DataChunk* out) {
      EXPECT_EQ(out, &chunk);  // pass-through, same storage
      emitted_rows += out->ActiveRows();
      ++emitted_chunks;
    });
  }
  compactor.Flush([&](DataChunk*) { FAIL() << "nothing buffered"; });
  EXPECT_EQ(emitted_chunks, 5u);
  EXPECT_EQ(emitted_rows, 50u);
  EXPECT_EQ(compactor.stats().rows_compacted, 0u);
  EXPECT_EQ(compactor.stats().compaction_flushes, 0u);
  EXPECT_EQ(compactor.stats().chunks_emitted, 5u);
}

TEST(ChunkCompactor, ThresholdOneBuffersEveryPartialChunk) {
  ChunkCompactor compactor(2, /*density_threshold=*/1.0);
  DataChunk chunk(2);
  std::vector<uint32_t> emitted;  // column-0 values, in emission order
  uint64_t full_emissions = 0;
  const auto emit = [&](DataChunk* out) {
    full_emissions += out->ActiveRows() == kChunkCapacity ? 1 : 0;
    for (uint32_t i = 0; i < out->ActiveRows(); ++i) {
      emitted.push_back(out->column(0)[out->RowAt(i)]);
    }
  };

  // 5 chunks of 300 rows = 1500 rows: one full emission mid-stream, the
  // remaining 476 rows only on Flush.
  for (uint32_t i = 0; i < 5; ++i) {
    FillChunk(&chunk, 300, i * 300);
    compactor.Push(&chunk, emit);
  }
  EXPECT_EQ(emitted.size(), kChunkCapacity);
  EXPECT_EQ(full_emissions, 1u);
  compactor.Flush(emit);
  ASSERT_EQ(emitted.size(), 1500u);
  // Gathering preserves row order.
  for (uint32_t i = 0; i < 1500; ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(compactor.stats().rows_compacted, 1500u);
  EXPECT_EQ(compactor.stats().chunks_emitted, 2u);
  EXPECT_EQ(compactor.stats().compaction_flushes, 2u);
}

TEST(ChunkCompactor, DenseChunksPassThroughSparseOnesBuffer) {
  ChunkCompactor compactor(1, /*density_threshold=*/0.5);
  DataChunk chunk(1);
  uint64_t pass_through = 0;
  uint64_t buffered_flushes = 0;
  const auto emit = [&](DataChunk* out) {
    pass_through += out == &chunk ? 1 : 0;
    buffered_flushes += out != &chunk ? 1 : 0;
  };

  FillChunk(&chunk, kChunkCapacity, 0);  // density 1.0 >= 0.5
  compactor.Push(&chunk, emit);
  EXPECT_EQ(pass_through, 1u);

  FillChunk(&chunk, 100, 0);  // density ~0.1 < 0.5
  compactor.Push(&chunk, emit);
  EXPECT_EQ(buffered_flushes, 0u);  // still accumulating
  compactor.Flush(emit);
  EXPECT_EQ(buffered_flushes, 1u);
  EXPECT_EQ(compactor.stats().rows_compacted, 100u);
}

TEST(ChunkCompactor, EmptyChunksAreDroppedAtTheBoundary) {
  ChunkCompactor compactor(1, /*density_threshold=*/0.25);
  DataChunk chunk(1);
  chunk.set_size(100);
  chunk.SetSelectionSize(0);  // filter killed every row
  compactor.Push(&chunk, [](DataChunk*) { FAIL() << "empty chunk emitted"; });
  EXPECT_EQ(compactor.stats().chunks_in, 1u);
  EXPECT_EQ(compactor.stats().chunks_emitted, 0u);
}

// --- MatchSink chunk adapter ------------------------------------------------

// A sink implementing only the tuple-at-a-time entry point must receive
// every pair of a chunk through the default ConsumeChunk adapter.
TEST(MatchSink, DefaultConsumeChunkUnbatches) {
  struct RecordingSink : join::MatchSink {
    std::vector<join::MatchedPair> pairs;
    int last_tid = -1;
    void Consume(int tid, Tuple build, Tuple probe) override {
      last_tid = tid;
      pairs.push_back(join::MatchedPair{probe.key, build.payload,
                                        probe.payload});
    }
  };

  join::MatchChunk chunk;
  for (uint32_t i = 0; i < 77; ++i) {
    chunk.Add(Tuple{i, i + 100}, Tuple{i, i + 200});
  }
  RecordingSink sink;
  static_cast<join::MatchSink&>(sink).ConsumeChunk(3, chunk);
  ASSERT_EQ(sink.pairs.size(), 77u);
  EXPECT_EQ(sink.last_tid, 3);
  for (uint32_t i = 0; i < 77; ++i) {
    EXPECT_EQ(sink.pairs[i], (join::MatchedPair{i, i + 100, i + 200}));
  }
}

// --- Pipeline: scan-only segment --------------------------------------------

// Keeps keys strictly below `bound`.
class KeyBelowFilter final : public Operator {
 public:
  explicit KeyBelowFilter(uint32_t bound) : bound_(bound) {}
  const char* name() const override { return "test.key_below"; }
  int output_columns() const override { return 2; }
  bool is_filter() const override { return true; }
  void Apply(int tid, DataChunk* chunk) override {
    RefineSelection(chunk, [this](const DataChunk& c, uint32_t row) {
      return c.column(kScanKeyCol)[row] < bound_;
    });
  }

 private:
  uint32_t bound_;
};

TEST(Pipeline, ScanFilterAggregateMatchesScalarLoop) {
  auto probe =
      workload::MakeUniformProbe(System(), 100000, 1 << 16, 21).value();

  TupleScan scan(probe.cspan());
  KeyBelowFilter filter(1 << 14);  // ~25% selective
  CountAggregate aggregate({kScanKeyCol});
  Pipeline pipeline(&scan, {&filter}, &aggregate);

  PipelineConfig config;
  config.num_threads = 4;
  const PipelineStats stats = pipeline.Run(System(), config).value();

  uint64_t expected_rows = 0;
  uint64_t expected_checksum = 0;
  for (const Tuple& t : probe.cspan()) {
    if (t.key < (1u << 14)) {
      ++expected_rows;
      expected_checksum += t.key;
    }
  }
  EXPECT_EQ(aggregate.rows(), expected_rows);
  EXPECT_EQ(aggregate.checksum(), expected_checksum);
  EXPECT_EQ(stats.source_rows, probe.size());
  EXPECT_EQ(stats.sink_rows, expected_rows);
  EXPECT_FALSE(stats.has_join);
  EXPECT_GT(stats.total_ns, 0);
}

TEST(Pipeline, CompactionReducesSinkChunksWithoutChangingTheAnswer) {
  auto probe =
      workload::MakeUniformProbe(System(), 200000, 1 << 16, 22).value();
  const uint32_t bound = 1 << 11;  // ~3% selective -> sparse chunks

  auto run = [&](double threshold) {
    TupleScan scan(probe.cspan());
    KeyBelowFilter filter(bound);
    CountAggregate aggregate({kScanKeyCol});
    Pipeline pipeline(&scan, {&filter}, &aggregate);
    PipelineConfig config;
    config.num_threads = 4;
    config.compaction_threshold = threshold;
    const PipelineStats stats = pipeline.Run(System(), config).value();
    return std::pair<uint64_t, PipelineStats>(aggregate.rows(), stats);
  };

  const auto [rows_off, stats_off] = run(0.0);
  const auto [rows_on, stats_on] = run(1.0);
  EXPECT_EQ(rows_on, rows_off);
  EXPECT_EQ(stats_on.sink_rows, stats_off.sink_rows);
  // Without compaction every sparse post-filter chunk crosses the sink
  // boundary; with it they are gathered into (nearly) full buffers.
  EXPECT_LT(stats_on.sink_chunks, stats_off.sink_chunks);
  EXPECT_GT(stats_on.rows_compacted, 0u);
  EXPECT_GT(stats_on.compaction_flushes, 0u);
  EXPECT_EQ(stats_off.rows_compacted, 0u);
}

// --- Pipeline: join segment -------------------------------------------------

TEST(Pipeline, JoinSegmentAgreesWithReferenceJoin) {
  auto build = workload::MakeDenseBuild(System(), 20000, 23).value();
  auto probe =
      workload::MakeUniformProbe(System(), 100000, 20000, 24).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());

  for (const double threshold : {0.0, 0.5, 1.0}) {
    TupleScan scan(probe.cspan());
    HashJoinProbe::Spec spec;
    spec.algorithm = join::Algorithm::kCPRL;
    spec.build = build.cspan();
    spec.key_domain = 20000;
    HashJoinProbe join_probe(spec);
    CountAggregate aggregate({kJoinBuildPayloadCol, kJoinProbePayloadCol});
    Pipeline pipeline(&scan, {&join_probe}, &aggregate);

    PipelineConfig config;
    config.num_threads = 4;
    config.compaction_threshold = threshold;
    const PipelineStats stats = pipeline.Run(System(), config).value();

    EXPECT_TRUE(stats.has_join);
    EXPECT_EQ(stats.join_matches, expected.matches) << threshold;
    EXPECT_EQ(stats.join_result.checksum, expected.checksum) << threshold;
    // The chunk stream delivered to the sink carries the same rows the
    // join reported -- nothing lost or duplicated at any boundary.
    EXPECT_EQ(aggregate.rows(), expected.matches) << threshold;
    EXPECT_EQ(aggregate.checksum(), expected.checksum) << threshold;
    EXPECT_EQ(stats.pre_join_ns + stats.join_ns, stats.total_ns);
  }
}

TEST(Pipeline, RejectsInvalidConfigurations) {
  auto build = workload::MakeDenseBuild(System(), 100, 25).value();
  auto probe = workload::MakeUniformProbe(System(), 100, 100, 26).value();

  TupleScan scan(probe.cspan());
  CountAggregate aggregate;
  {
    Pipeline pipeline(&scan, {}, &aggregate);
    PipelineConfig config;
    config.num_threads = 0;
    EXPECT_FALSE(pipeline.Run(System(), config).ok());
    config.num_threads = 2;
    config.compaction_threshold = 1.5;  // > 1 is meaningless
    EXPECT_FALSE(pipeline.Run(System(), config).ok());
  }
  {
    HashJoinProbe::Spec spec;
    spec.algorithm = join::Algorithm::kNOP;
    spec.build = build.cspan();
    HashJoinProbe j1(spec), j2(spec);
    Pipeline pipeline(&scan, {&j1, &j2}, &aggregate);  // two pipeline breakers
    EXPECT_FALSE(pipeline.Run(System(), PipelineConfig{}).ok());
  }
}

// --- Bushy composition: index materialize -> index scan ---------------------

TEST(Pipeline, IndexMaterializeThenIndexScanRoundTrips) {
  const uint64_t dim = 512;
  auto build = workload::MakeDenseBuild(System(), dim, 27).value();
  auto probe = workload::MakeUniformProbe(System(), 50000, dim, 28).value();

  // Pipeline 1: scan -> join -> materialize the join index.
  TupleScan scan(probe.cspan());
  HashJoinProbe::Spec spec;
  spec.algorithm = join::Algorithm::kCPRA;
  spec.build = build.cspan();
  spec.key_domain = dim;
  HashJoinProbe join_probe(spec);
  JoinIndexMaterialize index;
  Pipeline lower(&scan, {&join_probe}, &index);
  PipelineConfig config;
  config.num_threads = 4;
  const PipelineStats lower_stats = lower.Run(System(), config).value();
  EXPECT_EQ(index.size(), lower_stats.join_matches);
  const std::vector<join::MatchedPair> pairs = index.Gather();
  ASSERT_EQ(pairs.size(), probe.size());  // dense build: every probe matches

  // Pipeline 2: scan the index, filter on the key, count.
  const uint32_t bound = 100;
  JoinIndexScan index_scan(&pairs);
  struct IndexKeyBelow final : Operator {
    uint32_t bound;
    explicit IndexKeyBelow(uint32_t b) : bound(b) {}
    const char* name() const override { return "test.index_key_below"; }
    int output_columns() const override { return 3; }
    bool is_filter() const override { return true; }
    void Apply(int tid, DataChunk* chunk) override {
      RefineSelection(chunk, [this](const DataChunk& c, uint32_t row) {
        return c.column(kJoinKeyCol)[row] < bound;
      });
    }
  } key_filter(bound);
  CountAggregate aggregate;
  Pipeline upper(&index_scan, {&key_filter}, &aggregate);
  const PipelineStats upper_stats = upper.Run(System(), config).value();

  uint64_t expected = 0;
  for (const Tuple& t : probe.cspan()) expected += t.key < bound ? 1 : 0;
  EXPECT_EQ(aggregate.rows(), expected);
  EXPECT_EQ(upper_stats.source_rows, pairs.size());
}

}  // namespace
}  // namespace mmjoin::exec

// --- Differential Q19: thirteen algorithms x strategies x thresholds --------

namespace mmjoin::tpch {
namespace {

// Satellite of the pipeline rewrite: the pipelined Q19 must produce revenue
// identical (up to float summation tolerance) to the scalar reference for
// every join algorithm, under both reconstruction strategies, across the
// compaction-threshold range including the endpoints 0 (never compact) and
// 1 (always buffer partial chunks).
class Q19DifferentialTest : public ::testing::TestWithParam<join::Algorithm> {
 protected:
  static GeneratorOptions Options() {
    GeneratorOptions options;
    options.lineitem_rows = 120000;
    options.part_rows = 4000;
    options.seed = 7;
    return options;
  }
};

TEST_P(Q19DifferentialTest, RevenueMatchesReferenceAcrossThresholds) {
  static const GeneratorOptions options = Options();
  static const LineitemTable lineitem =
      GenerateLineitem(exec::System(), options);
  static const PartTable part = GeneratePart(exec::System(), options);
  static const double expected = Q19Reference(lineitem, part);
  const double tolerance = std::abs(expected) * 1e-9 + 1e-6;

  for (const Q19Strategy strategy :
       {Q19Strategy::kPipelined, Q19Strategy::kJoinIndex}) {
    for (const double threshold : {0.0, 0.5, 1.0}) {
      const Q19Result result =
          RunQ19(exec::System(), lineitem, part, GetParam(),
                 /*num_threads=*/4, strategy, /*executor=*/nullptr,
                 threshold);
      EXPECT_NEAR(result.revenue, expected, tolerance)
          << join::NameOf(GetParam()) << " strategy="
          << static_cast<int>(strategy) << " threshold=" << threshold;
      EXPECT_EQ(result.join_matches, result.filtered_rows)
          << join::NameOf(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, Q19DifferentialTest,
    ::testing::ValuesIn(join::AllAlgorithms()),
    [](const ::testing::TestParamInfo<join::Algorithm>& info) {
      return std::string(join::NameOf(info.param));
    });

}  // namespace
}  // namespace mmjoin::tpch
