// Observability layer tests: span recording and thread attribution, JSON
// round-trips of the trace and metrics writers, perf-counter graceful
// degradation (forced via the obs.perf_open failpoint), and the acceptance
// check that PhaseProfile stays consistent with the orchestrator-level
// PhaseTimes on a real join run.
//
// The tests in this binary share one process-wide TraceRecorder, so every
// test that enables observability restores the disabled default before
// returning (ObsTest fixture).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "join/join_algorithm.h"
#include "numa/system.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/phase_profile.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace mmjoin {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (recursive descent). Accepts exactly the
// grammar of RFC 8259; enough to prove the writers emit loadable JSON
// without pulling in a parser dependency.
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters must be escaped
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonValidator, SelfTest) {
  EXPECT_TRUE(JsonValidator(R"({"a":[1,2.5,-3e6],"b":"x\n","c":null})").Valid());
  EXPECT_FALSE(JsonValidator(R"({"a":1,})").Valid());
  EXPECT_FALSE(JsonValidator(R"({"a" 1})").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\":\"\x01\"}").Valid());
}

// ---------------------------------------------------------------------------
// Fixture: every test leaves observability disabled and the recorder empty.
// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Disable();
    obs::TraceRecorder::Get().Clear();
  }
  void TearDown() override {
    obs::Disable();
    obs::TraceRecorder::Get().Clear();
    failpoint::DeactivateAll();
  }
};

// ---------------------------------------------------------------------------
// Span recording, nesting, and thread attribution
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledScopeRecordsNothing) {
  {
    obs::ObsScope scope("test.disabled", obs::SpanKind::kOther);
  }
  EXPECT_EQ(obs::TraceRecorder::Get().Snapshot().size(), 0u);
}

TEST_F(ObsTest, NestedScopesRecordContainedIntervals) {
  obs::Enable();
  obs::SetCurrentThreadId(7);
  {
    obs::ObsScope outer("test.outer", obs::SpanKind::kRun);
    obs::ObsScope inner("test.inner", obs::SpanKind::kBuild);
  }
  const std::vector<obs::Span> spans = obs::TraceRecorder::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot orders by (tid, start): outer starts first.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_STREQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[0].tid, 7);
  EXPECT_EQ(spans[1].tid, 7);
  // The inner span nests inside the outer one.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
}

TEST_F(ObsTest, SpansCarryTheRecordingThreadsId) {
  obs::Enable();
  obs::SetCurrentThreadId(0);
  obs::TraceRecorder::Get().Record("test.main", obs::SpanKind::kOther, 10, 20);
  std::thread other([] {
    obs::SetCurrentThreadId(3);
    obs::TraceRecorder::Get().Record("test.worker", obs::SpanKind::kOther, 30,
                                     40);
  });
  other.join();

  bool saw_main = false;
  bool saw_worker = false;
  for (const obs::Span& span : obs::TraceRecorder::Get().Snapshot()) {
    if (std::string(span.name) == "test.main") {
      saw_main = true;
      EXPECT_EQ(span.tid, 0);
    } else if (std::string(span.name) == "test.worker") {
      saw_worker = true;
      EXPECT_EQ(span.tid, 3);
    }
  }
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_worker);
}

TEST_F(ObsTest, UnlabeledThreadsGetDistinctIds) {
  obs::Enable();
  int tid_a = -1;
  int tid_b = -1;
  std::thread a([&] { tid_a = obs::CurrentThreadId(); });
  a.join();
  std::thread b([&] { tid_b = obs::CurrentThreadId(); });
  b.join();
  EXPECT_GE(tid_a, obs::kUnlabeledThreadIdBase);
  EXPECT_GE(tid_b, obs::kUnlabeledThreadIdBase);
  EXPECT_NE(tid_a, tid_b);
}

// ---------------------------------------------------------------------------
// Trace and metrics writers emit valid JSON
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonIsValidAndCarriesSpans) {
  obs::Enable();
  obs::SetCurrentThreadId(1);
  obs::TraceRecorder::Get().Record("test.build", obs::SpanKind::kBuild, 1000,
                                   5000);
  obs::TraceRecorder::Get().Record("test.probe", obs::SpanKind::kProbe, 5000,
                                   9000);
  const std::string json = obs::TraceRecorder::Get().ChromeTraceJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.build\""), std::string::npos);
  EXPECT_NE(json.find("\"test.probe\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(ObsTest, WriteChromeTraceRoundTripsThroughAFile) {
  obs::Enable();
  obs::TraceRecorder::Get().Record("test.span", obs::SpanKind::kOther, 0, 100);
  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(obs::TraceRecorder::Get().WriteChromeTrace(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_TRUE(JsonValidator(contents).Valid());
  EXPECT_NE(contents.find("\"test.span\""), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonIsValidAndIncludesRegisteredCounters) {
  obs::MetricsRegistry::Get().AddCounter("test.obs_counter", 41);
  obs::MetricsRegistry::Get().AddCounter("test.obs_counter", 1);
  const std::string json = obs::MetricsRegistry::Get().Json();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"mmjoin.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs_counter\":42"), std::string::npos);
  // The static provider registrations from mem/thread/numa all contribute.
  EXPECT_NE(json.find("\"alloc.total_allocations\""), std::string::npos);
  EXPECT_NE(json.find("\"executor.dispatches\""), std::string::npos);
  EXPECT_NE(json.find("\"numa.local_read_bytes\""), std::string::npos);
}

uint64_t CounterValue(const std::string& name) {
  for (const obs::Metric& metric : obs::MetricsRegistry::Get().Snapshot()) {
    if (metric.name == name) return metric.value;
  }
  return 0;
}

// The skew counters obey their definitions: skew_slices counts tasks
// *beyond* one per partition, so tasks_seeded = partitions + skew_slices;
// skew_partitions counts partitions that were split, so it never exceeds
// skew_slices. Checked as deltas across one heavily skewed PRO run with a
// pinned radix_bits (64 partitions).
TEST_F(ObsTest, SkewCountersStayConsistentAcrossASkewedRun) {
  numa::NumaSystem system(4);
  const uint64_t build_size = 1 << 15;
  auto build = workload::MakeDenseBuild(&system, build_size, /*seed=*/11);
  ASSERT_TRUE(build.ok());
  auto probe = workload::MakeZipfProbe(&system, 1 << 17, build_size,
                                       /*theta=*/1.25, /*seed=*/12);
  ASSERT_TRUE(probe.ok());

  const uint64_t seeded_before = CounterValue("join.tasks_seeded");
  const uint64_t slices_before = CounterValue("join.skew_slices");
  const uint64_t skew_parts_before = CounterValue("join.skew_partitions");
  const uint64_t stolen_before = CounterValue("join.tasks_stolen");

  join::JoinConfig config;
  config.num_threads = 4;
  config.radix_bits = 6;  // 64 final partitions
  config.skew_task_factor = 4;
  auto result = join::RunJoin(join::Algorithm::kPRO, &system, config, *build,
                              *probe);
  ASSERT_TRUE(result.ok());

  const uint64_t seeded = CounterValue("join.tasks_seeded") - seeded_before;
  const uint64_t slices = CounterValue("join.skew_slices") - slices_before;
  const uint64_t skew_parts =
      CounterValue("join.skew_partitions") - skew_parts_before;
  EXPECT_EQ(seeded - slices, uint64_t{1} << config.radix_bits);
  EXPECT_LE(skew_parts, slices);
  // theta = 1.25 concentrates enough probe mass that at least one partition
  // must split under skew_task_factor = 4.
  EXPECT_GT(slices, 0u);
  EXPECT_GT(skew_parts, 0u);

  // The steal counters are exported on every run (possibly as zero deltas).
  bool saw_stolen = false;
  bool saw_steal_reads = false;
  for (const obs::Metric& metric : obs::MetricsRegistry::Get().Snapshot()) {
    if (metric.name == "join.tasks_stolen") saw_stolen = true;
    if (metric.name == "join.steal_remote_reads") saw_steal_reads = true;
  }
  EXPECT_TRUE(saw_stolen);
  EXPECT_TRUE(saw_steal_reads);
  EXPECT_GE(CounterValue("join.tasks_stolen"), stolen_before);
}

TEST_F(ObsTest, MetricsSnapshotIsSortedByName) {
  const std::vector<obs::Metric> metrics =
      obs::MetricsRegistry::Get().Snapshot();
  ASSERT_FALSE(metrics.empty());
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_LE(metrics[i - 1].name, metrics[i].name);
  }
}

// ---------------------------------------------------------------------------
// Perf counters: graceful degradation
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PerfCountersDegradeWhenOpenIsDenied) {
  FailPoint::Get("obs.perf_open").Activate(FailPoint::Mode::kAlways);
  obs::PerfCounters counters;
  EXPECT_FALSE(counters.ok());
  EXPECT_EQ(counters.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(counters.status().ToString().find("obs.perf_open"),
            std::string::npos);
  obs::CounterSample sample;
  sample.cycles = 123;
  EXPECT_FALSE(counters.Read(&sample));
  EXPECT_EQ(sample.cycles, 123u);  // untouched on failure
  FailPoint::Get("obs.perf_open").Deactivate();
}

TEST_F(ObsTest, CounterDeltaAccumulationTracksValidity) {
  obs::CounterDelta sum;
  EXPECT_FALSE(sum.valid);
  obs::CounterDelta invalid;
  sum += invalid;
  EXPECT_FALSE(sum.valid);
  obs::CounterSample begin;
  obs::CounterSample end;
  end.cycles = 100;
  end.instructions = 50;
  sum += obs::Subtract(end, begin);
  EXPECT_TRUE(sum.valid);
  EXPECT_EQ(sum.cycles, 100u);
  EXPECT_EQ(sum.instructions, 50u);
}

// ---------------------------------------------------------------------------
// PhaseProfile acceptance against PhaseTimes
// ---------------------------------------------------------------------------

TEST_F(ObsTest, JoinWithoutObservabilityCarriesNoProfile) {
  numa::NumaSystem system(2);
  auto build = workload::MakeDenseBuild(&system, 1 << 12, /*seed=*/7);
  ASSERT_TRUE(build.ok());
  auto probe = workload::MakeProbeFromBuild(&system, 1 << 14, *build,
                                            /*seed=*/8);
  ASSERT_TRUE(probe.ok());
  join::JoinConfig config;
  config.num_threads = 2;
  auto result = join::RunJoin(join::Algorithm::kNOPA, &system, config, *build,
                              *probe);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->profile.has_value());
}

TEST_F(ObsTest, PhaseProfileStaysWithinToleranceOfPhaseTimes) {
  obs::Enable();
  numa::NumaSystem system(2);
  const uint64_t build_size = 1 << 14;
  const uint64_t probe_size = 1 << 16;
  auto build = workload::MakeDenseBuild(&system, build_size, /*seed=*/7);
  ASSERT_TRUE(build.ok());
  auto probe = workload::MakeProbeFromBuild(&system, probe_size, *build,
                                            /*seed=*/8);
  ASSERT_TRUE(probe.ok());
  join::JoinConfig config;
  config.num_threads = 2;
  auto result = join::RunJoin(join::Algorithm::kNOPA, &system, config, *build,
                              *probe);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->profile.has_value());
  const obs::PhaseProfile& profile = *result->profile;

  const obs::PhaseStat& build_stat = profile.Of(obs::JoinPhase::kBuild);
  const obs::PhaseStat& probe_stat = profile.Of(obs::JoinPhase::kProbe);
  EXPECT_EQ(build_stat.threads, config.num_threads);
  EXPECT_EQ(probe_stat.threads, config.num_threads);
  EXPECT_GT(build_stat.total_ns, 0);
  EXPECT_GT(probe_stat.total_ns, 0);
  EXPECT_LE(build_stat.min_ns, build_stat.max_ns);
  EXPECT_LE(probe_stat.min_ns, probe_stat.max_ns);

  // Each phase scope is contained in the orchestrator's timed window for
  // that phase, so the slowest thread's scope cannot exceed the PhaseTimes
  // entry (small slack for the unsynchronized build_end stamp).
  constexpr int64_t kSlackNs = 10'000'000;  // 10 ms of scheduling noise
  EXPECT_LE(build_stat.max_ns, result->times.build_ns + kSlackNs);
  EXPECT_LE(probe_stat.max_ns, result->times.probe_ns + kSlackNs);

  // The critical path estimate matches the measured total to within a
  // generous factor (schedulers on oversubscribed CI hosts can distort
  // per-thread times, but not by an order of magnitude both ways).
  const int64_t critical = profile.CriticalPathNs();
  EXPECT_GT(critical, 0);
  EXPECT_LE(critical, result->times.total_ns + kSlackNs);
  EXPECT_GE(critical, result->times.total_ns / 16);

  // The run also recorded executor and phase trace spans.
  bool saw_build_span = false;
  for (const obs::Span& span : obs::TraceRecorder::Get().Snapshot()) {
    if (std::string(span.name) == "build") saw_build_span = true;
  }
  EXPECT_TRUE(saw_build_span);
}

TEST_F(ObsTest, PartitionedJoinProfilesPartitionPhases) {
  obs::Enable();
  numa::NumaSystem system(2);
  auto build = workload::MakeDenseBuild(&system, 1 << 14, /*seed=*/7);
  ASSERT_TRUE(build.ok());
  auto probe = workload::MakeProbeFromBuild(&system, 1 << 16, *build,
                                            /*seed=*/8);
  ASSERT_TRUE(probe.ok());
  join::JoinConfig config;
  config.num_threads = 2;
  auto result = join::RunJoin(join::Algorithm::kPRO, &system, config, *build,
                              *probe);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->profile.has_value());
  const obs::PhaseProfile& profile = *result->profile;
  EXPECT_GT(profile.Of(obs::JoinPhase::kPartitionPass1).threads, 0);
  EXPECT_GT(profile.Of(obs::JoinPhase::kBuild).threads, 0);
  EXPECT_GT(profile.Of(obs::JoinPhase::kProbe).threads, 0);
}

// ---------------------------------------------------------------------------
// Disabled-path overhead: a disarmed ObsScope must stay in the nanoseconds.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledScopeCostIsNanoseconds) {
  ASSERT_FALSE(obs::Enabled());
  constexpr int kIters = 1'000'000;
  const int64_t start = NowNanos();
  for (int i = 0; i < kIters; ++i) {
    obs::ObsScope scope("test.overhead", obs::SpanKind::kOther);
  }
  const int64_t elapsed = NowNanos() - start;
  // A disabled scope is one relaxed load and two predicted branches --
  // single-digit nanoseconds. The bound is ~50x that so the test never
  // flakes on a loaded CI host, yet still fails instantly if the disabled
  // path ever starts allocating or recording.
  EXPECT_LT(elapsed / kIters, 250) << "avg ns per disabled ObsScope";
  EXPECT_EQ(obs::TraceRecorder::Get().Snapshot().size(), 0u);
}

}  // namespace
}  // namespace mmjoin
