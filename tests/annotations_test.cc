// Tests for the annotated lock layer (util/mutex.h) and for the structures
// that were converted onto it: the wrappers must behave exactly like the
// std:: primitives they wrap, and Executor / TaskQueue / Barrier must be
// observably unchanged after the annotation refactor.
//
// The static side of the story -- that MMJOIN_GUARDED_BY actually REJECTS an
// unlocked access under clang -- cannot live in a test that has to compile.
// It is proven two ways:
//   * tests/annotations_negative.cc, compiled (and required to fail) by
//     scripts/run_static_analysis.sh, and
//   * the #if-guarded block at the bottom of this file: defining
//     MMJOIN_TEST_ANNOTATION_VIOLATION must break the build under
//     clang -Werror=thread-safety. Never define it in checked-in builds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "thread/executor.h"
#include "thread/task_queue.h"
#include "thread/thread_team.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace mmjoin {
namespace {

// ---------------------------------------------------------------- wrappers

TEST(Mutex, ProvidesMutualExclusion) {
  Mutex mutex;
  int64_t counter = 0;  // intentionally non-atomic: the lock is the test
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mutex);
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mutex;
  mutex.Lock();
  std::atomic<int> observed{-1};
  std::thread other([&] {
    const bool got = mutex.TryLock();
    if (got) mutex.Unlock();
    observed.store(got ? 1 : 0, std::memory_order_release);
  });
  other.join();
  EXPECT_EQ(observed.load(std::memory_order_acquire), 0);
  mutex.Unlock();
  EXPECT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(CondVar, WaitReleasesAndReacquires) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    MutexLock lock(mutex);
    while (!ready) cv.Wait(mutex);
    // The mutex must be held again here: mutate shared state in plain code.
    ready = false;
    woke.store(true, std::memory_order_release);
  });
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
  MutexLock lock(mutex);
  EXPECT_FALSE(ready);
}

TEST(CondVar, WaitUntilTimesOut) {
  Mutex mutex;
  CondVar cv;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  MutexLock lock(mutex);
  bool signaled = true;
  while (signaled) {
    if (!cv.WaitUntil(mutex, deadline)) {
      signaled = false;  // timed out, as expected: nobody notifies
    }
  }
  EXPECT_FALSE(signaled);
}

TEST(SharedMutex, ReadersOverlapWriterExcludes) {
  SharedMutex mutex;
  int64_t value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        ReaderMutexLock lock(mutex);
        const int now =
            concurrent_readers.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = max_concurrent.load(std::memory_order_relaxed);
        while (now > seen && !max_concurrent.compare_exchange_weak(
                                 seen, now, std::memory_order_relaxed,
                                 std::memory_order_relaxed)) {
        }
        (void)value;
        concurrent_readers.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 500; ++i) {
      WriterMutexLock lock(mutex);
      // Writers are exclusive: no reader may be inside.
      ASSERT_EQ(concurrent_readers.load(std::memory_order_acquire), 0);
      ++value;
    }
  });
  for (auto& thread : threads) thread.join();
  WriterMutexLock lock(mutex);
  EXPECT_EQ(value, 500);
  // With 4 readers hammering a short section, overlap should happen; this is
  // a sanity signal, not a guarantee, so only assert the possible range.
  EXPECT_GE(max_concurrent.load(std::memory_order_relaxed), 1);
  EXPECT_LE(max_concurrent.load(std::memory_order_relaxed), kReaders);
}

// ------------------------------------- annotated structures, same behavior

TEST(AnnotatedExecutor, DispatchSemanticsUnchanged) {
  constexpr int kThreads = 6;
  thread::Executor executor(kThreads);
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::atomic<int>> hits(kThreads);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    ASSERT_TRUE(executor.Dispatch(kThreads, [&](const thread::WorkerContext& ctx) {
      hits[ctx.thread_id].fetch_add(1, std::memory_order_relaxed);
    }).ok());
    for (const auto& h : hits) {
      ASSERT_EQ(h.load(std::memory_order_relaxed), 1);
    }
  }
  const thread::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.dispatches, kRounds);
  EXPECT_EQ(stats.threads_spawned, kThreads);  // pool reused, not respawned
  EXPECT_TRUE(executor.IsIdle());
}

TEST(AnnotatedExecutor, WatchdogStillFiresAfterRefactor) {
  thread::Executor executor(2, /*num_nodes=*/1);
  executor.set_watchdog_timeout(50);
  std::atomic<bool> release{false};
  const Status status =
      executor.Dispatch(2, [&](const thread::WorkerContext& ctx) {
        if (ctx.thread_id == 1) {
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
  EXPECT_FALSE(status.ok());
  release.store(true, std::memory_order_release);
  // The executor poisoned itself; later dispatches must refuse, not hang.
  const Status after = executor.Dispatch(
      1, [](const thread::WorkerContext&) {});
  EXPECT_FALSE(after.ok());
}

TEST(AnnotatedTaskQueue, LifoUnderConcurrentPushPop) {
  thread::TaskQueue queue;
  constexpr int kProducers = 4;
  constexpr uint32_t kPerProducer = 5000;
  const uint64_t kTotal = static_cast<uint64_t>(kProducers) * kPerProducer;
  std::vector<std::thread> threads;
  threads.reserve(kProducers * 2);
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> pop_checksum{0};
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t i = 0; i < kPerProducer; ++i) {
        queue.Push(thread::JoinTask{
            static_cast<uint32_t>(t) * kPerProducer + i});
      }
    });
    threads.emplace_back([&] {
      thread::JoinTask task;
      uint64_t sum = 0;
      while (popped.load(std::memory_order_relaxed) < kTotal) {
        if (queue.Pop(&task)) {
          sum += task.partition;
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();  // producers are still pushing
        }
      }
      pop_checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();
  const uint64_t drained = popped.load(std::memory_order_relaxed);
  const uint64_t checksum = pop_checksum.load(std::memory_order_relaxed);
  EXPECT_EQ(drained, kTotal);
  EXPECT_EQ(checksum, kTotal * (kTotal - 1) / 2);  // every task exactly once
  EXPECT_EQ(queue.SizeForTest(), 0u);
}

TEST(AnnotatedBarrier, GenerationsStayInLockstep) {
  constexpr int kThreads = 5;
  constexpr int kGenerations = 200;
  thread::Barrier barrier(kThreads);
  std::vector<std::atomic<int>> counts(kGenerations);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  std::atomic<bool> violated{false};
  thread::RunTeam(kThreads, [&](int) {
    for (int g = 0; g < kGenerations; ++g) {
      counts[g].fetch_add(1, std::memory_order_acq_rel);
      barrier.ArriveAndWait();
      // After the barrier, generation g must be fully arrived...
      if (counts[g].load(std::memory_order_acquire) != kThreads) {
        violated.store(true, std::memory_order_relaxed);
      }
      // ...and generation g+1 not yet overshot.
      if (g + 1 < kGenerations &&
          counts[g + 1].load(std::memory_order_acquire) > kThreads) {
        violated.store(true, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_FALSE(violated.load(std::memory_order_relaxed));
}

// ------------------------------------------ compile-time proof (guarded)
//
// Defining MMJOIN_TEST_ANNOTATION_VIOLATION must make this translation unit
// FAIL to compile under clang -Werror=thread-safety ("reading variable
// 'guarded_' requires holding mutex 'mutex_'"). Under GCC the attributes are
// no-ops and the block merely compiles to a racy function nobody calls.
// scripts/run_static_analysis.sh exercises the equivalent violation in
// tests/annotations_negative.cc on every run, so this stays a documented
// escape hatch for manual spot checks:
//
//   clang++ -std=c++20 -Isrc -fsyntax-only -Werror=thread-safety
//     -DMMJOIN_TEST_ANNOTATION_VIOLATION tests/annotations_test.cc
#if defined(MMJOIN_TEST_ANNOTATION_VIOLATION)
class Violation {
 public:
  int Read() { return guarded_; }  // no lock: must not compile under clang

 private:
  Mutex mutex_;
  int guarded_ MMJOIN_GUARDED_BY(mutex_) = 0;
};
#endif

}  // namespace
}  // namespace mmjoin
