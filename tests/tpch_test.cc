// Tests for the TPC-H Q19 substrate: generator distributions, predicate
// semantics, and end-to-end query equivalence across join algorithms.

#include <gtest/gtest.h>

#include <cmath>

#include "join/join_defs.h"
#include "numa/system.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "tpch/tables.h"

namespace mmjoin::tpch {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.lineitem_rows = 300000;
  options.part_rows = 10000;
  options.seed = 7;
  return options;
}

TEST(Generator, RowCountsFollowScaleFactor) {
  GeneratorOptions options;
  options.scale_factor = 0.01;
  PartTable part = GeneratePart(System(), options);
  EXPECT_EQ(part.num_tuples(), 2000u);
}

TEST(Generator, PartKeysDenseAndSorted) {
  PartTable part = GeneratePart(System(), SmallOptions());
  for (uint64_t i = 0; i < part.num_tuples(); ++i) {
    ASSERT_EQ(part.p_partkey()[i].key, i);
    ASSERT_EQ(part.p_partkey()[i].payload, i);
  }
}

TEST(Generator, PartAttributeDomains) {
  PartTable part = GeneratePart(System(), SmallOptions());
  for (uint64_t i = 0; i < part.num_tuples(); ++i) {
    ASSERT_LT(part.p_brand()[i], kNumBrands);
    ASSERT_LT(part.p_container()[i], kNumContainers);
    ASSERT_GE(part.p_size()[i], 1u);
    ASSERT_LE(part.p_size()[i], 50u);
  }
}

TEST(Generator, LineitemReferencesParts) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  for (uint64_t i = 0; i < lineitem.num_tuples(); ++i) {
    ASSERT_LT(lineitem.l_partkey()[i].key, options.part_rows);
    ASSERT_EQ(lineitem.l_partkey()[i].payload, i);
    ASSERT_GE(lineitem.l_quantity()[i], 1u);
    ASSERT_LE(lineitem.l_quantity()[i], 50u);
  }
}

TEST(Generator, PrefilterSelectivityMatchesTarget) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  uint64_t passing = 0;
  for (uint64_t i = 0; i < lineitem.num_tuples(); ++i) {
    passing += PreJoin(lineitem, i) ? 1 : 0;
  }
  const double measured =
      static_cast<double>(passing) / lineitem.num_tuples();
  // Paper: 3.57% for Q19.
  EXPECT_NEAR(measured, 0.0357, 0.004);
}

TEST(Generator, SelectivityKnob) {
  GeneratorOptions options = SmallOptions();
  options.prefilter_selectivity = 0.20;
  LineitemTable lineitem = GenerateLineitem(System(), options);
  uint64_t passing = 0;
  for (uint64_t i = 0; i < lineitem.num_tuples(); ++i) {
    passing += PreJoin(lineitem, i) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(passing) / lineitem.num_tuples(), 0.20,
              0.01);
}

TEST(Predicates, BrandCodes) {
  EXPECT_EQ(kBrand12, 1);
  EXPECT_EQ(kBrand23, 7);
  EXPECT_EQ(kBrand34, 13);
  EXPECT_LT(kBrand12, kNumBrands);
}

TEST(Predicates, PostJoinAcceptsListing3Disjuncts) {
  numa::NumaSystem* system = System();
  LineitemTable l(system, 3);
  PartTable p(system, 3);
  // Disjunct 1: Brand#12, SM container, quantity 1..11, size 1..5.
  p.p_brand()[0] = kBrand12;
  p.p_container()[0] = ContainerCode(kSm, kCase);
  p.p_size()[0] = 3;
  l.l_quantity()[0] = 5;
  EXPECT_TRUE(PostJoin(l, p, 0, 0));

  // Wrong container size class.
  p.p_brand()[1] = kBrand12;
  p.p_container()[1] = ContainerCode(kLg, kCase);
  p.p_size()[1] = 3;
  l.l_quantity()[1] = 5;
  EXPECT_FALSE(PostJoin(l, p, 1, 1));

  // Disjunct 3: Brand#34, LG container, quantity 20..30, size 1..15.
  p.p_brand()[2] = kBrand34;
  p.p_container()[2] = ContainerCode(kLg, kPkg);
  p.p_size()[2] = 15;
  l.l_quantity()[2] = 30;
  EXPECT_TRUE(PostJoin(l, p, 2, 2));
}

TEST(Predicates, PostJoinQuantityBoundaries) {
  numa::NumaSystem* system = System();
  LineitemTable l(system, 1);
  PartTable p(system, 1);
  p.p_brand()[0] = kBrand23;
  p.p_container()[0] = ContainerCode(kMed, kBox);
  p.p_size()[0] = 10;
  for (const auto& [quantity, expected] :
       {std::pair{9u, false}, {10u, true}, {20u, true}, {21u, false}}) {
    l.l_quantity()[0] = quantity;
    EXPECT_EQ(PostJoin(l, p, 0, 0), expected) << "qty=" << quantity;
  }
}

class Q19JoinsTest : public ::testing::TestWithParam<join::Algorithm> {};

TEST_P(Q19JoinsTest, MatchesScanReference) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  PartTable part = GeneratePart(System(), options);

  const double expected = Q19Reference(lineitem, part);
  const Q19Result result =
      RunQ19(System(), lineitem, part, GetParam(), /*num_threads=*/4);
  EXPECT_NEAR(result.revenue, expected, std::abs(expected) * 1e-9 + 1e-6);
  EXPECT_GT(result.filtered_rows, 0u);
  EXPECT_EQ(result.join_matches, result.filtered_rows);  // PK join: 1 match
  EXPECT_GT(result.result_rows, 0u);
  EXPECT_GT(result.filter_ns, 0);
  EXPECT_GT(result.join_ns, 0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperJoins, Q19JoinsTest,
    ::testing::Values(join::Algorithm::kNOP, join::Algorithm::kNOPA,
                      join::Algorithm::kCPRL, join::Algorithm::kCPRA),
    [](const ::testing::TestParamInfo<join::Algorithm>& info) {
      return std::string(join::NameOf(info.param));
    });

// Satellite of the pipeline rewrite: the phase accounting must keep the
// identity filter_ns + join_ns == total_ns (join_ns is defined as
// everything after the pre-join filter stage). A small tolerance absorbs
// clock-read placement; real drift (double-counted or dropped phases) is
// orders of magnitude larger.
TEST(Q19, PhaseTimesSumToTotal) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  PartTable part = GeneratePart(System(), options);

  for (const Q19Strategy strategy :
       {Q19Strategy::kPipelined, Q19Strategy::kJoinIndex}) {
    const Q19Result result =
        RunQ19(System(), lineitem, part, join::Algorithm::kCPRL,
               /*num_threads=*/4, strategy);
    EXPECT_GT(result.filter_ns, 0);
    EXPECT_GT(result.join_ns, 0);
    const int64_t tolerance = result.total_ns / 100 + 1000;  // 1% + 1us
    EXPECT_NEAR(static_cast<double>(result.filter_ns + result.join_ns),
                static_cast<double>(result.total_ns),
                static_cast<double>(tolerance))
        << "strategy=" << static_cast<int>(strategy);
  }
}

class Q19StrategyTest : public ::testing::TestWithParam<join::Algorithm> {};

TEST_P(Q19StrategyTest, JoinIndexStrategyMatchesPipelined) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  PartTable part = GeneratePart(System(), options);

  const Q19Result pipelined = RunQ19(System(), lineitem, part, GetParam(),
                                     4, Q19Strategy::kPipelined);
  const Q19Result indexed = RunQ19(System(), lineitem, part, GetParam(), 4,
                                   Q19Strategy::kJoinIndex);
  EXPECT_EQ(indexed.join_matches, pipelined.join_matches);
  EXPECT_EQ(indexed.result_rows, pipelined.result_rows);
  EXPECT_NEAR(indexed.revenue, pipelined.revenue,
              std::abs(pipelined.revenue) * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, Q19StrategyTest,
    ::testing::Values(join::Algorithm::kNOP, join::Algorithm::kCPRA),
    [](const ::testing::TestParamInfo<join::Algorithm>& info) {
      return std::string(join::NameOf(info.param));
    });

TEST(Q19Morph, StepsAreCumulativeAndRevenueConsistent) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  PartTable part = GeneratePart(System(), options);

  const Q19MorphResult morph =
      RunQ19Morph(System(), lineitem, part, /*num_threads=*/4);
  const double expected = Q19Reference(lineitem, part);
  EXPECT_NEAR(morph.revenue_step4, expected,
              std::abs(expected) * 1e-9 + 1e-6);
  EXPECT_NEAR(morph.revenue_step5, expected,
              std::abs(expected) * 1e-9 + 1e-6);
  for (int s = 0; s < 5; ++s) EXPECT_GT(morph.step_ns[s], 0) << s;
  // Step 4 includes step 3's work.
  EXPECT_GE(morph.step_ns[3], morph.step_ns[2]);
}

TEST(Q19, RevenueIsPositiveOnRealisticData) {
  const GeneratorOptions options = SmallOptions();
  LineitemTable lineitem = GenerateLineitem(System(), options);
  PartTable part = GeneratePart(System(), options);
  EXPECT_GT(Q19Reference(lineitem, part), 0.0);
}

}  // namespace
}  // namespace mmjoin::tpch
