// Tests for the JoinAdvisor heuristic (lessons learned, paper Section 9).

#include <gtest/gtest.h>

#include "core/advisor.h"

namespace mmjoin::core {
namespace {

using join::Algorithm;

TEST(Advisor, LargeDenseWorkloadPicksChunkedArray) {
  const Advice advice =
      AdviseJoin({128u << 20, 1280u << 20, 128u << 20, 0.0}, 32);
  EXPECT_EQ(advice.algorithm, Algorithm::kCPRA);
  EXPECT_FALSE(advice.reason.empty());
}

TEST(Advisor, LargeSparseWorkloadPicksChunkedLinear) {
  // Domain 100x the build side: arrays are no longer worth it.
  const Advice advice =
      AdviseJoin({128u << 20, 1280u << 20, 100 * (128ull << 20), 0.0}, 32);
  EXPECT_EQ(advice.algorithm, Algorithm::kCPRL);
}

TEST(Advisor, UnknownDomainAvoidsArrays) {
  const Advice advice = AdviseJoin({128u << 20, 1280u << 20, 0, 0.0}, 32);
  EXPECT_EQ(advice.algorithm, Algorithm::kCPRL);
}

TEST(Advisor, SmallBuildPicksNoPartitioning) {
  const Advice dense = AdviseJoin({1 << 20, 10 << 20, 1 << 20, 0.0}, 32);
  EXPECT_EQ(dense.algorithm, Algorithm::kNOPA);
  const Advice sparse =
      AdviseJoin({1 << 20, 10 << 20, 100ull << 20, 0.0}, 32);
  EXPECT_EQ(sparse.algorithm, Algorithm::kNOP);
}

TEST(Advisor, HighSkewPicksNoPartitioning) {
  const Advice advice =
      AdviseJoin({128u << 20, 1280u << 20, 0, 0.99}, 32);
  EXPECT_EQ(advice.algorithm, Algorithm::kNOP);
}

TEST(Advisor, ModerateSkewStaysPartitionBased) {
  // Lesson 3: NOP starts winning only beyond Zipf 0.9.
  const Advice advice =
      AdviseJoin({128u << 20, 1280u << 20, 128u << 20, 0.5}, 32);
  EXPECT_EQ(advice.algorithm, Algorithm::kCPRA);
}

TEST(Advisor, SkewTrumpsSize) {
  const Advice advice = AdviseJoin({1 << 20, 100 << 20, 1 << 20, 0.95}, 32);
  EXPECT_EQ(advice.algorithm, Algorithm::kNOPA);
}

}  // namespace
}  // namespace mmjoin::core
