// Tests for the cache/TLB simulator and the join-phase access replayers.
// These encode the micro-architectural claims the paper makes: SWWCB cuts
// TLB misses, huge pages extend TLB reach, partitioned joins turn a
// miss-bound probe into a cache-resident one, CHT doubles the random
// accesses of a probe.

#include <gtest/gtest.h>

#include "memsim/cache.h"
#include "memsim/replay.h"

namespace mmjoin::memsim {
namespace {

TEST(SetAssociativeCache, SequentialFitsAfterWarmup) {
  SetAssociativeCache cache(32 * 1024, 8);
  // Touch 16 KB twice: second pass must hit every line.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
      cache.Access(addr);
    }
  }
  EXPECT_EQ(cache.stats().misses, 16u * 1024 / 64);
  EXPECT_EQ(cache.stats().hits, 16u * 1024 / 64);
}

TEST(SetAssociativeCache, CapacityEviction) {
  SetAssociativeCache cache(32 * 1024, 8);
  // Stream 1 MB twice: nothing survives, every access misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t addr = 0; addr < (1 << 20); addr += 64) {
      cache.Access(addr);
    }
  }
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SetAssociativeCache, LruKeepsHotLine) {
  SetAssociativeCache cache(8 * 64, 8);  // one set of 8 ways
  // Hot line + 7 fillers fit; an 8th filler evicts the LRU (not the hot
  // line if we keep touching it).
  for (int round = 0; round < 4; ++round) {
    cache.Access(0);  // hot
    for (uint64_t i = 1; i <= 7; ++i) cache.Access(i * 64 * 8);
  }
  const uint64_t misses_before = cache.stats().misses;
  cache.Access(0);
  EXPECT_EQ(cache.stats().misses, misses_before);  // still resident
}

TEST(Tlb, PageSizeDeterminesReach) {
  // 32 entries x 2 MB pages cover 64 MB; the same 32 entries with 4 KB
  // pages cover 128 KB.
  Tlb huge(32, 2 << 20);
  Tlb small(32, 4 << 10);
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t addr = 0; addr < (32u << 20); addr += 4096) {
      huge.Access(addr);
      small.Access(addr);
    }
  }
  EXPECT_GT(huge.stats().hit_rate(), 0.99);
  EXPECT_LT(small.stats().hit_rate(), 0.01);
}

TEST(Tlb, SmallWorkingSetAlwaysHits) {
  Tlb tlb(256, 4096);
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t p = 0; p < 200; ++p) tlb.Access(p * 4096);
  }
  EXPECT_EQ(tlb.stats().misses, 200u);
}

TEST(MemoryHierarchy, InclusiveLookupOrder) {
  MemoryHierarchy hierarchy(HierarchyConfig::HugePages());
  hierarchy.Access(0);
  hierarchy.Access(0);
  EXPECT_EQ(hierarchy.l1().hits, 1u);
  EXPECT_EQ(hierarchy.l1().misses, 1u);
  EXPECT_EQ(hierarchy.l2().total(), 1u);  // only the first access descends
}

TEST(MemoryHierarchy, NonTemporalBypassesCaches) {
  MemoryHierarchy hierarchy(HierarchyConfig::HugePages());
  hierarchy.AccessNonTemporal(12345);
  EXPECT_EQ(hierarchy.l1().total(), 0u);
  EXPECT_EQ(hierarchy.tlb().total(), 1u);
}

// --- Replayers: the paper's claims ------------------------------------------

TEST(Replay, SequentialScanIsCacheFriendly) {
  const PhaseReport report =
      ReplaySequentialScan(HierarchyConfig::HugePages(), 1 << 20);
  // 8 tuples per line: 7/8 of accesses hit L1.
  EXPECT_GT(report.l1.hit_rate(), 0.85);
}

TEST(Replay, SwwcbCutsTlbMisses) {
  // The core SWWCB claim (Section 5.1): buffering full cache lines reduces
  // TLB misses by ~the tuples-per-line factor.
  const HierarchyConfig config = HierarchyConfig::SmallPages();
  const PhaseReport direct =
      ReplayScatter(config, 1 << 20, 1 << 12, /*swwcb=*/false, 1);
  const PhaseReport buffered =
      ReplayScatter(config, 1 << 20, 1 << 12, /*swwcb=*/true, 1);
  EXPECT_LT(buffered.tlb.misses * 3, direct.tlb.misses);
}

TEST(Replay, HugePagesHurtDirectScatterBeyondTlbCapacity) {
  // Figure 8's PRB anomaly: 128 partition write cursors fit 256 small-page
  // TLB entries but not the 32 huge-page entries. Page sizes are scaled
  // down 32x (4 KB/256 vs 64 KB/32) so each partition still spans multiple
  // "huge" pages at unit-test input sizes; the entry-count mechanism is the
  // same.
  HierarchyConfig small = HierarchyConfig::SmallPages();  // 4 KB x 256
  HierarchyConfig huge = HierarchyConfig::SmallPages();
  huge.page_bytes = 64 * 1024;
  huge.tlb_entries = 32;
  const PhaseReport small_pages =
      ReplayScatter(small, 1 << 20, 128, /*swwcb=*/false, 2);
  const PhaseReport huge_pages =
      ReplayScatter(huge, 1 << 20, 128, /*swwcb=*/false, 2);
  EXPECT_LT(small_pages.tlb.miss_rate(), 0.02);
  EXPECT_GT(huge_pages.tlb.miss_rate(), 10 * small_pages.tlb.miss_rate());
  EXPECT_GT(huge_pages.tlb.miss_rate(), 0.15);
}

TEST(Replay, HugePagesHelpGlobalHashProbes) {
  // For NOP's giant table, huge pages extend TLB reach (lesson 4).
  const PhaseReport small_pages = ReplayGlobalProbe(
      HierarchyConfig::SmallPages(), 1 << 18, 1 << 22, TableLayout::kLinear,
      3);
  const PhaseReport huge_pages = ReplayGlobalProbe(
      HierarchyConfig::HugePages(), 1 << 18, 1 << 22, TableLayout::kLinear,
      3);
  EXPECT_LT(huge_pages.tlb.miss_rate(), small_pages.tlb.miss_rate() * 0.5);
}

TEST(Replay, PartitionedJoinIsCacheResident) {
  // Table 4: partition-based joins reach ~99% hit rates in the join phase
  // because each per-partition table fits L2; the global NOP table misses
  // almost always once |R| exceeds the LLC.
  const HierarchyConfig config = HierarchyConfig::HugePages();
  const uint64_t build = 1 << 23, probe = 1 << 23;
  const PhaseReport global =
      ReplayGlobalProbe(config, probe, build, TableLayout::kLinear, 4);
  const PhaseReport partitioned = ReplayPartitionedJoin(
      config, build, probe, /*partitions=*/1 << 10, TableLayout::kLinear, 4);
  EXPECT_LT(global.llc.hit_rate(), 0.35);
  EXPECT_GT(partitioned.l2.hit_rate() + partitioned.l1.hit_rate(), 0.9);
  EXPECT_LT(partitioned.llc.misses, global.llc.misses / 5);
}

TEST(Replay, ChtProbesTwiceThePlainTable) {
  // Table 4: CHTJ suffers roughly 2x the cache misses of NOP due to the
  // bitmap lookup before the dense-array access.
  // Both tables must dwarf the LLC for every access to miss (the paper's
  // |R| = 128M regime): 16M build tuples -> 256 MB linear table, 160 MB CHT.
  const HierarchyConfig config = HierarchyConfig::HugePages();
  const uint64_t build = 1 << 24, probe = 1 << 22;
  const PhaseReport linear =
      ReplayGlobalProbe(config, probe, build, TableLayout::kLinear, 5);
  const PhaseReport cht =
      ReplayGlobalProbe(config, probe, build, TableLayout::kCht, 5);
  const double ratio = static_cast<double>(cht.llc.misses) /
                       static_cast<double>(linear.llc.misses);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

TEST(Replay, SortPhaseTouchesMemoryMoreThanScan) {
  const HierarchyConfig config = HierarchyConfig::HugePages();
  const PhaseReport sort = ReplaySortPhase(config, 1 << 20, 1 << 15);
  const PhaseReport scan = ReplaySequentialScan(config, 1 << 20);
  EXPECT_GT(sort.l1.total(), scan.l1.total() * 4);
}

TEST(PhaseReport, Accumulates) {
  PhaseReport a, b;
  a.l1.hits = 10;
  b.l1.hits = 5;
  b.tlb.misses = 3;
  a += b;
  EXPECT_EQ(a.l1.hits, 15u);
  EXPECT_EQ(a.tlb.misses, 3u);
}

}  // namespace
}  // namespace mmjoin::memsim
