// Telemetry tests: histogram bucket layout and quantile accuracy, concurrent
// recording (the TSan job runs this binary), OpenMetrics exposition
// round-trips, the structured event log (level filtering, JSON escaping),
// the EXPLAIN ANALYZE report identity against PhaseProfile, and a raw-socket
// round-trip through the stats server.
//
// The log and metrics registries are process-global; every test that touches
// them restores defaults before returning (TelemetryTest fixture).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/explain.h"
#include "join/join_algorithm.h"
#include "numa/system.h"
#include "obs/exposition.h"
#include "obs/histogram.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/phase_profile.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/log_events.h"
#include "workload/generator.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mmjoin {
namespace {

// Minimal RFC 8259 validator (same approach as obs_test.cc): enough to prove
// a writer emits loadable JSON without a parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Disable();
    obs::TraceRecorder::Get().Clear();
    logging::SetLogCaptureForTest(nullptr);
    logging::SetLogFormatForTest(logging::LogFormat::kDefault);
    logging::SetLogLevel(logging::LogLevel::kInfo);
  }
};

// ---------------------------------------------------------------------------
// Histogram bucket layout
// ---------------------------------------------------------------------------

TEST(Histogram, ValuesBelow16AreExact) {
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::Histogram::BucketIndex(v), v);
    EXPECT_EQ(obs::Histogram::BucketUpperBound(static_cast<uint32_t>(v)), v);
  }
}

TEST(Histogram, BucketIndexRoundTripsThroughUpperBound) {
  // A value must be <= the upper bound of its own bucket and > the upper
  // bound of the previous one; sample across the full uint64 range.
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v < 4096; ++v) values.push_back(v);
  for (int shift = 12; shift < 64; ++shift) {
    const uint64_t base = uint64_t{1} << shift;
    values.push_back(base - 1);
    values.push_back(base);
    values.push_back(base + base / 3);
    values.push_back(base + base / 2 + 1);
  }
  values.push_back(~uint64_t{0});
  for (const uint64_t v : values) {
    const uint32_t index = obs::Histogram::BucketIndex(v);
    ASSERT_LT(index, obs::Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(v, obs::Histogram::BucketUpperBound(index)) << "value " << v;
    if (index > 0) {
      EXPECT_GT(v, obs::Histogram::BucketUpperBound(index - 1))
          << "value " << v;
    }
  }
}

TEST(Histogram, BucketUpperBoundsAreStrictlyMonotone) {
  uint64_t prev = obs::Histogram::BucketUpperBound(0);
  for (uint32_t i = 1; i < obs::Histogram::kNumBuckets; ++i) {
    const uint64_t bound = obs::Histogram::BucketUpperBound(i);
    ASSERT_GT(bound, prev) << "bucket " << i;
    prev = bound;
  }
  // The last bucket covers the top of the range.
  EXPECT_EQ(obs::Histogram::BucketIndex(~uint64_t{0}),
            obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, QuantilesMatchSortedReferenceWithin1Over16) {
  obs::Histogram hist;
  std::vector<uint64_t> reference;
  // Deterministic skewed values spanning several decades (xorshift).
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 20000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const uint64_t value = (state % 1'000'000) + 16;  // >= 16: log range
    hist.Record(value);
    reference.push_back(value);
  }
  std::sort(reference.begin(), reference.end());
  const obs::HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, reference.size());
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * reference.size())));
    const uint64_t exact = reference[rank - 1];
    const uint64_t approx = snap.ValueAtQuantile(q);
    // ValueAtQuantile reports the bucket's inclusive upper bound: never
    // below the true value, and at most 1/16 above it.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact + exact / 16) << "q=" << q;
  }
  EXPECT_EQ(snap.max, reference.back());
}

TEST(Histogram, EmptySnapshotIsZero) {
  obs::Histogram hist;
  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 0u);
}

TEST(Histogram, ConcurrentRecordAndSnapshotMerge) {
  obs::Histogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(i % 1000 + static_cast<uint64_t>(t));
      }
    });
  }
  // Torn snapshots while recording must stay internally consistent
  // (count never exceeds the final total; TSan checks the memory orders).
  for (int i = 0; i < 50; ++i) {
    const obs::HistogramSnapshot snap = hist.Snapshot();
    EXPECT_LE(snap.count, kThreads * kPerThread);
  }
  for (std::thread& worker : workers) worker.join();

  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += i % 1000 + static_cast<uint64_t>(t);
    }
  }
  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.max, 999u + kThreads - 1);
}

// ---------------------------------------------------------------------------
// Metric-name and log-event registries
// ---------------------------------------------------------------------------

// Every counter the process actually exports must be a registered name (or
// live in the test.* namespace, reserved for ad-hoc metrics in tests). The
// registry itself is cross-checked against src/ literals and the docs tables
// by scripts/mmjoin_lint; this test closes the loop on the runtime side for
// every provider linked into this binary.
TEST(MetricNames, SnapshotExportsOnlyRegisteredCounters) {
  for (const obs::Metric& metric : obs::MetricsRegistry::Get().Snapshot()) {
    if (metric.name.rfind("test.", 0) == 0) continue;
    EXPECT_TRUE(obs::IsRegisteredCounterName(metric.name)) << metric.name;
  }
}

TEST(MetricNames, RegisteredHistogramsOnly) {
  for (const obs::NamedHistogram& hist :
       obs::MetricsRegistry::Get().SnapshotHistograms()) {
    if (hist.name.rfind("test.", 0) == 0) continue;
    EXPECT_TRUE(obs::IsRegisteredHistogramName(hist.name)) << hist.name;
  }
  EXPECT_TRUE(obs::IsRegisteredHistogramName("join.latency_ns"));
  EXPECT_FALSE(obs::IsRegisteredHistogramName("join.latency"));
}

TEST(LogEvents, RegistryLookupsAndNoDuplicates) {
  EXPECT_TRUE(logging::IsRegisteredEventName("budget.replan"));
  EXPECT_TRUE(logging::IsRegisteredEventName("failpoint.unknown_name"));
  EXPECT_FALSE(logging::IsRegisteredEventName("budget.replans"));
  std::vector<std::string_view> names(std::begin(logging::kRegisteredEventNames),
                                      std::end(logging::kRegisteredEventNames));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate log event name in registry";
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition
// ---------------------------------------------------------------------------

TEST(Exposition, SanitizeMetricName) {
  EXPECT_EQ(obs::SanitizeMetricName("join.latency_ns"),
            "mmjoin_join_latency_ns");
  EXPECT_EQ(obs::SanitizeMetricName("a-b c%d"), "mmjoin_a_b_c_d");
  EXPECT_EQ(obs::SanitizeMetricName("already_ok:name"),
            "mmjoin_already_ok:name");
}

// Pulls the `le` -> cumulative-count samples of one histogram family plus
// its _sum/_count out of an exposition text.
struct ParsedFamily {
  std::vector<std::pair<double, uint64_t>> buckets;  // le, cumulative
  uint64_t sum = 0;
  uint64_t count = 0;
  bool saw_type_line = false;
};

ParsedFamily ParseHistogramFamily(const std::string& text,
                                  const std::string& family) {
  ParsedFamily parsed;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line == "# TYPE " + family + " histogram") {
      parsed.saw_type_line = true;
    } else if (line.rfind(family + "_bucket{le=\"", 0) == 0) {
      const size_t le_start = line.find('"') + 1;
      const size_t le_end = line.find('"', le_start);
      const std::string le = line.substr(le_start, le_end - le_start);
      const uint64_t value =
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      parsed.buckets.emplace_back(
          le == "+Inf" ? std::numeric_limits<double>::infinity()
                       : std::strtod(le.c_str(), nullptr),
          value);
    } else if (line.rfind(family + "_sum ", 0) == 0) {
      parsed.sum = std::strtoull(line.c_str() + family.size() + 5, nullptr, 10);
    } else if (line.rfind(family + "_count ", 0) == 0) {
      parsed.count =
          std::strtoull(line.c_str() + family.size() + 7, nullptr, 10);
    }
  }
  return parsed;
}

TEST_F(TelemetryTest, ExpositionRoundTripsAHistogramFamily) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Get().GetHistogram("test.expo_hist");
  const std::vector<uint64_t> values = {3, 17, 17, 250, 4096, 70000};
  uint64_t expected_sum = 0;
  for (const uint64_t v : values) {
    hist->Record(v);
    expected_sum += v;
  }

  const std::string text = obs::WriteExposition();
  // OpenMetrics terminator, as the final line.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  const ParsedFamily parsed =
      ParseHistogramFamily(text, "mmjoin_test_expo_hist");
  EXPECT_TRUE(parsed.saw_type_line);
  ASSERT_GE(parsed.buckets.size(), 2u);  // >= one boundary + +Inf
  // Cumulative counts must be monotone in `le`, ending at +Inf == _count.
  for (size_t i = 1; i < parsed.buckets.size(); ++i) {
    EXPECT_GT(parsed.buckets[i].first, parsed.buckets[i - 1].first);
    EXPECT_GE(parsed.buckets[i].second, parsed.buckets[i - 1].second);
  }
  EXPECT_TRUE(std::isinf(parsed.buckets.back().first));
  EXPECT_EQ(parsed.buckets.back().second, values.size());
  EXPECT_EQ(parsed.count, values.size());
  EXPECT_EQ(parsed.sum, expected_sum);

  // A p50 derived from the cumulative buckets must bracket the true median
  // (17) the same way ValueAtQuantile does: first le with cumulative count
  // >= count/2.
  const uint64_t rank = (values.size() + 1) / 2;
  double derived_p50 = 0;
  for (const auto& [le, cumulative] : parsed.buckets) {
    if (cumulative >= rank) {
      derived_p50 = le;
      break;
    }
  }
  EXPECT_GE(derived_p50, 17.0);
  EXPECT_LE(derived_p50, 17.0 * (1.0 + 1.0 / 16));
}

TEST_F(TelemetryTest, ExpositionCountersCarryTotalSuffix) {
  obs::MetricsRegistry::Get().AddCounter("test.expo_counter", 7);
  const std::string text = obs::WriteExposition();
  EXPECT_NE(text.find("# TYPE mmjoin_test_expo_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nmmjoin_test_expo_counter_total "), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonHistogramSectionIsValid) {
  obs::MetricsRegistry::Get().GetHistogram("test.json_hist")->Record(42);
  const std::string json = obs::MetricsRegistry::Get().Json();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured event log
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, LogLevelFiltersAndCountsSuppressed) {
  std::string capture;
  logging::SetLogCaptureForTest(&capture);
  logging::SetLogFormatForTest(logging::LogFormat::kText);
  logging::SetLogLevel(logging::LogLevel::kWarn);
  const logging::LogStats before = logging::GetLogStats();

  MMJOIN_LOG(kDebug, "test.filtered_debug").Field("x", 1);
  MMJOIN_LOG(kInfo, "test.filtered_info").Field("x", 2);
  MMJOIN_LOG(kWarn, "test.emitted_warn").Field("x", 3);
  MMJOIN_LOG(kError, "test.emitted_error").Field("x", 4);

  const logging::LogStats after = logging::GetLogStats();
  EXPECT_EQ(capture.find("test.filtered_debug"), std::string::npos);
  EXPECT_EQ(capture.find("test.filtered_info"), std::string::npos);
  EXPECT_NE(capture.find("test.emitted_warn"), std::string::npos);
  EXPECT_NE(capture.find("test.emitted_error"), std::string::npos);
  EXPECT_NE(capture.find("x=3"), std::string::npos);
  EXPECT_EQ(after.suppressed - before.suppressed, 2u);
  EXPECT_EQ(after.emitted[2] - before.emitted[2], 1u);  // warn
  EXPECT_EQ(after.emitted[3] - before.emitted[3], 1u);  // error
}

TEST_F(TelemetryTest, LogJsonLinesAreValidAndEscaped) {
  std::string capture;
  logging::SetLogCaptureForTest(&capture);
  logging::SetLogFormatForTest(logging::LogFormat::kJson);
  logging::SetLogLevel(logging::LogLevel::kInfo);

  MMJOIN_LOG(kWarn, "test.json_event")
      .Field("path", "a\"b\\c\nd\te")
      .Field("count", uint64_t{12})
      .Field("ratio", 0.5)
      .Field("flag", true);

  ASSERT_FALSE(capture.empty());
  ASSERT_EQ(capture.back(), '\n');
  const std::string line = capture.substr(0, capture.size() - 1);
  EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  EXPECT_NE(line.find("\"event\":\"test.json_event\""), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(line.find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
  EXPECT_NE(line.find("\"count\":12"), std::string::npos);
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos);
}

TEST(LogEscaping, ControlCharactersBecomeUnicodeEscapes) {
  std::string out;
  logging::AppendJsonEscaped(&out, std::string_view("\x01\x1f ok", 5));
  EXPECT_EQ(out, "\\u0001\\u001f ok");
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE report
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ExplainReportMatchesPhaseProfileExactly) {
  obs::Enable();
  numa::NumaSystem system(2);
  auto build = workload::MakeDenseBuild(&system, 1 << 14, /*seed=*/21);
  ASSERT_TRUE(build.ok());
  auto probe = workload::MakeProbeFromBuild(&system, 1 << 16, *build,
                                            /*seed=*/22);
  ASSERT_TRUE(probe.ok());

  const std::map<std::string, uint64_t> before =
      obs::MetricsRegistry::Get().SnapshotMap();
  join::JoinConfig config;
  config.num_threads = 2;
  auto result = join::RunJoin(join::Algorithm::kPRO, &system, config, *build,
                              *probe);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->profile.has_value());

  const core::ExplainReport report = core::BuildExplainReport(
      "PRO", *result, 1 << 14, 1 << 16, config.num_threads, &system, before,
      obs::MetricsRegistry::Get().SnapshotMap());

  // Steal matrix is nodes x nodes and sums to the reported total.
  EXPECT_EQ(report.num_nodes, system.topology().num_nodes());
  ASSERT_EQ(report.steal_matrix.size(),
            static_cast<size_t>(report.num_nodes) * report.num_nodes);
  uint64_t matrix_total = 0;
  for (const uint64_t cell : report.steal_matrix) matrix_total += cell;
  EXPECT_EQ(matrix_total, report.total_steals);

  const std::string json = core::ExplainReportJson(report);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"mmjoin.report.v1\""), std::string::npos);

  // Identity: every per-phase ns total in the report JSON is the
  // PhaseProfile sum, verbatim.
  const obs::PhaseProfile& profile = *result->profile;
  int phases_checked = 0;
  for (int p = 0; p < obs::kNumJoinPhases; ++p) {
    const obs::PhaseStat& stat = profile.phases[p];
    if (stat.threads == 0) continue;
    const std::string expected =
        std::string("\"") +
        obs::JoinPhaseName(static_cast<obs::JoinPhase>(p)) +
        "\":{\"threads\":" + std::to_string(stat.threads) +
        ",\"total_ns\":" + std::to_string(stat.total_ns);
    EXPECT_NE(json.find(expected), std::string::npos) << expected;
    ++phases_checked;
  }
  EXPECT_GT(phases_checked, 0);
  const std::string critical = "\"critical_path_ns\":" +
                               std::to_string(profile.CriticalPathNs());
  EXPECT_NE(json.find(critical), std::string::npos);

  // The human-readable rendering names the report and each active phase.
  const std::string text = core::FormatExplainText(report);
  EXPECT_NE(text.find("== EXPLAIN ANALYZE: PRO =="), std::string::npos);
  EXPECT_NE(text.find("partition.pass1"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);

  // The latency histogram accrued this run.
  const obs::HistogramSnapshot latency =
      obs::MetricsRegistry::Get().GetHistogram("join.latency_ns")->Snapshot();
  EXPECT_GT(latency.count, 0u);
}

TEST_F(TelemetryTest, ExplainCounterDeltasDropNonIncreasingEntries) {
  join::JoinResult result;
  const std::map<std::string, uint64_t> before = {{"a", 5}, {"b", 3},
                                                  {"gone", 9}};
  const std::map<std::string, uint64_t> after = {{"a", 8}, {"b", 3},
                                                 {"new", 2}};
  const core::ExplainReport report = core::BuildExplainReport(
      "X", result, 0, 0, 1, nullptr, before, after);
  ASSERT_EQ(report.counters.size(), 2u);
  EXPECT_EQ(report.counters.at("a"), 3u);
  EXPECT_EQ(report.counters.at("new"), 2u);
}

// ---------------------------------------------------------------------------
// Trace metadata
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceCarriesDropMetadata) {
  obs::Enable();
  { obs::ObsScope scope("test.span", obs::SpanKind::kOther); }
  const std::string json = obs::TraceRecorder::Get().ChromeTraceJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"metadata\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded_spans\":"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":"), std::string::npos);
}

TEST_F(TelemetryTest, TraceDropCounterIsExported) {
  const std::map<std::string, uint64_t> snapshot =
      obs::MetricsRegistry::Get().SnapshotMap();
  EXPECT_NE(snapshot.find("obs.trace_dropped_spans"), snapshot.end());
}

// ---------------------------------------------------------------------------
// Stats server (Linux only)
// ---------------------------------------------------------------------------

#ifdef __linux__
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(TelemetryTest, StatsServerServesExpositionAndJson) {
  obs::MetricsRegistry::Get().GetHistogram("test.server_hist")->Record(100);
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_GT(server.port(), 0);
  ASSERT_TRUE(server.running());

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(metrics.find("mmjoin_test_server_hist_count"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);

  const std::string json = HttpGet(server.port(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(json.find("mmjoin.metrics.v1"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent; a second server can bind afterwards.
  server.Stop();
  obs::StatsServer second;
  EXPECT_TRUE(second.Start(0).ok());
  second.Stop();
}

TEST_F(TelemetryTest, StatsServerRejectsDoubleStart) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

// Regression: the accept loop serves one client at a time with blocking
// read/write, so a client that connects and never sends a request used to
// wedge the endpoint (and Stop()) until the peer went away. With the
// per-client SO_RCVTIMEO/SO_SNDTIMEO deadline, an idle connection times
// out and the next scrape is served normally.
TEST_F(TelemetryTest, StatsServerSurvivesIdleClient) {
  obs::StatsServer server;
  server.set_client_io_timeout_ms(200);
  ASSERT_TRUE(server.Start(0).ok());

  // Connect and send nothing: the server's read() on this socket must time
  // out instead of blocking forever.
  const int idle_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(idle_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A well-behaved scrape right behind the idle client must still get its
  // response (after at most the idle client's timeout).
  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);

  // And Stop() must return promptly even with the idle connection open.
  server.Stop();
  EXPECT_FALSE(server.running());
  ::close(idle_fd);
}
#endif  // __linux__

}  // namespace
}  // namespace mmjoin
