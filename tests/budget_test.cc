// Per-join memory budget tests (docs/ROBUSTNESS.md "Memory budgets"):
// BudgetTracker admission control, the PlanMemoryBudget degradation ladder
// (re-plan bits -> spill waves -> reject), peak-resident accounting, and the
// differential contract -- every algorithm produces bit-identical match
// counts and checksums under a budget, or rejects with a clean
// ResourceExhausted when its working set is indivisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "join/join_algorithm.h"
#include "join/join_defs.h"
#include "mem/aligned_alloc.h"
#include "mem/budget.h"
#include "numa/system.h"
#include "partition/model.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "workload/generator.h"

namespace mmjoin {
namespace {

// ---------------------------------------------------------------------------
// BudgetTracker / BudgetReservation units
// ---------------------------------------------------------------------------

TEST(BudgetTracker, UnboundedAdmitsEverythingButStillAccounts) {
  mem::BudgetTracker tracker;  // budget 0 == unbounded
  EXPECT_FALSE(tracker.bounded());
  ASSERT_TRUE(tracker.Reserve(1ull << 40, "huge").ok());
  EXPECT_EQ(tracker.reserved_bytes(), 1ull << 40);
  tracker.Release(1ull << 40);
  EXPECT_EQ(tracker.reserved_bytes(), 0u);
  // Peak survives the release: it reports the plan-level working set.
  EXPECT_EQ(tracker.peak_reserved_bytes(), 1ull << 40);
}

TEST(BudgetTracker, BoundedRejectsOvercommitAndRecovers) {
  mem::BudgetTracker tracker(1000);
  EXPECT_TRUE(tracker.bounded());
  ASSERT_TRUE(tracker.Reserve(600, "first").ok());
  EXPECT_EQ(tracker.available_bytes(), 400u);

  const Status denied = tracker.Reserve(600, "second");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  // The message names the claimant and the budget state.
  EXPECT_NE(denied.message().find("second"), std::string::npos);
  EXPECT_EQ(tracker.reserved_bytes(), 600u);  // failed reserve charged nothing

  tracker.Release(600);
  EXPECT_TRUE(tracker.Reserve(1000, "exact fit").ok());
  EXPECT_EQ(tracker.available_bytes(), 0u);
  tracker.Release(1000);
}

TEST(BudgetTracker, OversizedSingleRequestRejectedEvenWhenEmpty) {
  mem::BudgetTracker tracker(100);
  EXPECT_EQ(tracker.Reserve(101, "too big").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(tracker.reserved_bytes(), 0u);
}

TEST(BudgetReservation, RaiiReleasesOnScopeExit) {
  mem::BudgetTracker tracker(4096);
  {
    auto reservation =
        mem::BudgetReservation::Acquire(&tracker, 4096, "scoped");
    ASSERT_TRUE(reservation.ok());
    EXPECT_EQ(reservation->bytes(), 4096u);
    EXPECT_EQ(tracker.reserved_bytes(), 4096u);
  }
  EXPECT_EQ(tracker.reserved_bytes(), 0u);
}

TEST(BudgetReservation, MoveTransfersOwnershipAndReleaseIsIdempotent) {
  mem::BudgetTracker tracker(4096);
  auto first = mem::BudgetReservation::Acquire(&tracker, 1024, "a");
  ASSERT_TRUE(first.ok());
  mem::BudgetReservation moved = *std::move(first);
  EXPECT_EQ(tracker.reserved_bytes(), 1024u);
  moved.Release();
  moved.Release();  // idempotent
  EXPECT_EQ(tracker.reserved_bytes(), 0u);
}

TEST(BudgetReservation, NullTrackerYieldsEmptyReservation) {
  auto reservation =
      mem::BudgetReservation::Acquire(nullptr, 1ull << 30, "unbudgeted");
  ASSERT_TRUE(reservation.ok());
  EXPECT_TRUE(reservation->empty());
  EXPECT_EQ(reservation->bytes(), 0u);
}

TEST(BudgetStats, CountersTrackReservationsAndRejections) {
  mem::ResetBudgetStats();
  mem::BudgetTracker tracker(100);
  ASSERT_TRUE(tracker.Reserve(100, "fits").ok());
  EXPECT_FALSE(tracker.Reserve(1, "denied").ok());
  tracker.Release(100);
  const mem::BudgetStats stats = mem::GetBudgetStats();
  EXPECT_EQ(stats.reservations, 1u);
  EXPECT_EQ(stats.rejections, 1u);
}

TEST(BudgetStats, ReserveFailpointInjectsRejection) {
  failpoint::DeactivateAll();
  mem::ResetBudgetStats();
  ASSERT_TRUE(failpoint::Configure("budget.reserve=once").ok());
  mem::BudgetTracker tracker(1ull << 30);
  const Status injected = tracker.Reserve(1, "victim");
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(injected.message().find("injected"), std::string::npos);
  EXPECT_EQ(tracker.reserved_bytes(), 0u);
  // Disarmed after firing: the retry is admitted.
  EXPECT_TRUE(tracker.Reserve(1, "victim").ok());
  EXPECT_EQ(mem::GetBudgetStats().rejections, 1u);
  tracker.Release(1);
  failpoint::DeactivateAll();
}

// ---------------------------------------------------------------------------
// PlanMemoryBudget: the degradation ladder
// ---------------------------------------------------------------------------

partition::MemoryPlanInput BaseInput() {
  partition::MemoryPlanInput in;
  in.build_tuples = 1u << 20;
  in.probe_tuples = 1u << 23;
  in.num_threads = 4;
  in.base_bits = 10;
  in.max_bits = 20;
  in.scratch_total_bytes = 16.0 * static_cast<double>(in.build_tuples);
  return in;
}

TEST(PlanMemoryBudget, UnboundedKeepsBasePlan) {
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(BaseInput());
  EXPECT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.replanned);
  EXPECT_EQ(plan.radix_bits, 10u);
  EXPECT_EQ(plan.wave_count, 1u);
}

TEST(PlanMemoryBudget, AmplePlanAdmittedUnchanged) {
  partition::MemoryPlanInput in = BaseInput();
  in.budget_bytes = 1ull << 32;
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  EXPECT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.replanned);
  EXPECT_EQ(plan.wave_count, 1u);
  EXPECT_LE(plan.planned_bytes, in.budget_bytes);
}

TEST(PlanMemoryBudget, Stage1EscalatesRadixBits) {
  partition::MemoryPlanInput in = BaseInput();
  // Just below the base plan: one extra bit's worth of scratch shrink
  // suffices, so the plan degrades without waves.
  const uint64_t base =
      partition::PlanMemoryBudget(BaseInput()).planned_bytes;
  in.budget_bytes = base - 1;
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.replanned);
  EXPECT_GT(plan.radix_bits, in.base_bits);
  EXPECT_EQ(plan.wave_count, 1u);
  EXPECT_LE(plan.planned_bytes, in.budget_bytes);
}

TEST(PlanMemoryBudget, Stage1RespectsFixedBits) {
  partition::MemoryPlanInput in = BaseInput();
  in.bits_fixed = true;
  in.budget_bytes =
      partition::PlanMemoryBudget(BaseInput()).planned_bytes - 1;
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  EXPECT_EQ(plan.radix_bits, in.base_bits);  // never escalated
  // The budget shortfall must be absorbed by waves instead.
  EXPECT_GT(plan.wave_count, 1u);
}

TEST(PlanMemoryBudget, Stage2SpillsProbeSideInWaves) {
  partition::MemoryPlanInput in = BaseInput();
  // Too small for the whole probe side, ample for everything else.
  const uint64_t probe_bytes = in.probe_tuples * sizeof(Tuple);
  in.budget_bytes = probe_bytes / 4 + in.build_tuples * sizeof(Tuple) +
                    4 * (1u << 20);
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.wave_count, 1u);
  EXPECT_LE(plan.wave_count, partition::kMaxSpillWaves);
  EXPECT_LE(plan.planned_bytes, in.budget_bytes);
}

TEST(PlanMemoryBudget, InfeasibleWhenResidentSetExceedsBudget) {
  partition::MemoryPlanInput in = BaseInput();
  in.budget_bytes = in.build_tuples * sizeof(Tuple) / 2;  // < R alone
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  EXPECT_FALSE(plan.feasible);
  // planned_bytes reports the best-effort minimum so the error can say how
  // much would have been needed.
  EXPECT_GT(plan.planned_bytes, in.budget_bytes);
}

TEST(PlanMemoryBudget, InfeasibleBeyondWaveCap) {
  partition::MemoryPlanInput in = BaseInput();
  // Leaves room for less than 1/kMaxSpillWaves of the probe side above the
  // resident set, so the wave ladder runs out.
  const uint64_t resident =
      partition::PlanMemoryBudget(BaseInput()).planned_bytes -
      in.probe_tuples * sizeof(Tuple);
  in.budget_bytes = resident +
                    in.probe_tuples * sizeof(Tuple) /
                        (2 * partition::kMaxSpillWaves);
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  EXPECT_FALSE(plan.feasible);
}

TEST(PlanMemoryBudget, EscalationStopsAtScratchFloor) {
  partition::MemoryPlanInput in = BaseInput();
  in.budget_bytes = 1;  // unsatisfiable: exercises the full ladder
  const partition::MemoryPlan plan = partition::PlanMemoryBudget(in);
  EXPECT_FALSE(plan.feasible);
  // Bits stop escalating once another bit no longer shrinks the plan --
  // well before max_bits for this scratch size.
  EXPECT_LT(plan.radix_bits, in.max_bits);
}

// ---------------------------------------------------------------------------
// Peak-resident accounting (mem.current_bytes / mem.peak_bytes)
// ---------------------------------------------------------------------------

TEST(PeakResident, AllocationRaisesPeakFreeLowersCurrent) {
  mem::ResetPeakResident();
  const mem::AllocStats before = mem::GetAllocStats();
  constexpr uint64_t kBytes = 4u << 20;  // mmap-class
  void* ptr =
      mem::AllocateAligned(kBytes, kCacheLineSize, mem::PagePolicy::kDefault);
  ASSERT_NE(ptr, nullptr);
  const mem::AllocStats held = mem::GetAllocStats();
  EXPECT_GE(held.current_bytes, before.current_bytes + kBytes);
  EXPECT_GE(held.peak_bytes, before.current_bytes + kBytes);
  mem::FreeAligned(ptr, kBytes);
  const mem::AllocStats after = mem::GetAllocStats();
  EXPECT_EQ(after.current_bytes, held.current_bytes - kBytes);
  EXPECT_EQ(after.peak_bytes, held.peak_bytes);  // peak survives the free

  mem::ResetPeakResident();
  EXPECT_EQ(mem::GetAllocStats().peak_bytes, after.current_bytes);
}

// ---------------------------------------------------------------------------
// Differential: all thirteen algorithms under shrinking budgets
// ---------------------------------------------------------------------------

class BudgetDifferentialTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBuild = 65536;
  static constexpr uint64_t kProbe = 400000;

  void SetUp() override {
    failpoint::DeactivateAll();
    build_ = workload::MakeDenseBuild(System(), kBuild, 7).value();
    probe_ = workload::MakeUniformProbe(System(), kProbe, kBuild, 8).value();
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  static numa::NumaSystem* System() {
    static auto* system = new numa::NumaSystem(4);
    return system;
  }

  // Runs `algorithm` with an explicit tracker and returns the result plus
  // the tracker's peak reservation (the measured plan-level working set).
  StatusOr<join::JoinResult> RunWithBudget(join::Algorithm algorithm,
                                           uint64_t budget_bytes,
                                           uint64_t* peak_out = nullptr) {
    mem::BudgetTracker tracker(budget_bytes);
    join::JoinConfig config;
    config.num_threads = 4;
    config.budget = &tracker;
    auto result = join::RunJoin(algorithm, System(), config, build_, probe_);
    if (peak_out != nullptr) *peak_out = tracker.peak_reserved_bytes();
    return result;
  }

  workload::Relation build_;
  workload::Relation probe_;
};

// PR*/CPR* degrade gracefully and stay bit-identical; the indivisible-table
// algorithms (NOP*, CHTJ, MWAY) either fit or reject cleanly. Budgets are
// fractions of each algorithm's own measured (plan-level) unbounded peak,
// clamped to the configurable minimum.
TEST_F(BudgetDifferentialTest, AllAlgorithmsBitIdenticalOrCleanlyRejected) {
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    // Measure: a budget far above any plan admits without degradation.
    uint64_t peak = 0;
    const auto baseline =
        RunWithBudget(algorithm, uint64_t{1} << 40, &peak);
    ASSERT_TRUE(baseline.ok())
        << join::NameOf(algorithm) << ": " << baseline.status().ToString();
    ASSERT_GT(peak, 0u) << join::NameOf(algorithm)
                        << " reserved nothing against a bounded tracker";

    for (const double fraction : {0.5, 0.15}) {
      const uint64_t budget = std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(peak) * fraction),
          join::JoinConfig::kMinMemBudgetBytes);
      const std::size_t live_before = System()->num_live_regions();
      mem::ResetBudgetStats();
      const auto constrained = RunWithBudget(algorithm, budget);
      if (constrained.ok()) {
        EXPECT_EQ(constrained.value().matches, baseline.value().matches)
            << join::NameOf(algorithm) << " fraction=" << fraction;
        EXPECT_EQ(constrained.value().checksum, baseline.value().checksum)
            << join::NameOf(algorithm) << " fraction=" << fraction;
      } else {
        // Only the indivisible-working-set algorithms may reject.
        EXPECT_EQ(constrained.status().code(),
                  StatusCode::kResourceExhausted)
            << join::NameOf(algorithm) << " fraction=" << fraction;
        EXPECT_TRUE(algorithm == join::Algorithm::kNOP ||
                    algorithm == join::Algorithm::kNOPA ||
                    algorithm == join::Algorithm::kCHTJ ||
                    algorithm == join::Algorithm::kMWAY)
            << join::NameOf(algorithm)
            << " must degrade gracefully, not reject; "
            << constrained.status().ToString();
        EXPECT_GE(mem::GetBudgetStats().rejections, 1u)
            << join::NameOf(algorithm);
      }
      EXPECT_EQ(System()->num_live_regions(), live_before)
          << join::NameOf(algorithm) << " leaked a region at fraction "
          << fraction;
    }
  }
}

// The 15% budget must push every partition-based algorithm into spill-wave
// mode (the probe side alone exceeds the budget), observable through the
// mem.budget_* counters.
TEST_F(BudgetDifferentialTest, TightBudgetEngagesWaveModeForPartitionJoins) {
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const auto join_class = join::InfoOf(algorithm).join_class;
    if (join_class != join::JoinClass::kPartitionBased) continue;

    uint64_t peak = 0;
    const auto baseline =
        RunWithBudget(algorithm, uint64_t{1} << 40, &peak);
    ASSERT_TRUE(baseline.ok()) << join::NameOf(algorithm);

    const uint64_t budget = std::max<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(peak) * 0.15),
        join::JoinConfig::kMinMemBudgetBytes);
    mem::ResetBudgetStats();
    const auto constrained = RunWithBudget(algorithm, budget);
    ASSERT_TRUE(constrained.ok())
        << join::NameOf(algorithm) << " failed at 15%: "
        << constrained.status().ToString();
    EXPECT_EQ(constrained.value().checksum, baseline.value().checksum)
        << join::NameOf(algorithm);

    const mem::BudgetStats stats = mem::GetBudgetStats();
    EXPECT_GE(stats.waves, 1u)
        << join::NameOf(algorithm) << " never entered wave mode at 15%";
    EXPECT_GE(stats.wave_rounds, 2u)
        << join::NameOf(algorithm) << " wave mode ran fewer than 2 rounds";
    EXPECT_EQ(stats.reservations, 1u) << join::NameOf(algorithm);
  }
}

// budget.wave forces the spill-wave path with no budget pressure at all:
// results must still be bit-identical (wave decomposition is exact, not an
// approximation).
TEST_F(BudgetDifferentialTest, ForcedWaveModeIsBitIdentical) {
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    if (join::InfoOf(algorithm).join_class !=
        join::JoinClass::kPartitionBased) {
      continue;
    }
    join::JoinConfig config;
    config.num_threads = 4;
    const auto baseline =
        join::RunJoin(algorithm, System(), config, build_, probe_);
    ASSERT_TRUE(baseline.ok()) << join::NameOf(algorithm);

    mem::ResetBudgetStats();
    ASSERT_TRUE(failpoint::Configure("budget.wave=always").ok());
    const auto waved =
        join::RunJoin(algorithm, System(), config, build_, probe_);
    failpoint::DeactivateAll();
    ASSERT_TRUE(waved.ok())
        << join::NameOf(algorithm) << ": " << waved.status().ToString();
    EXPECT_EQ(waved.value().matches, baseline.value().matches)
        << join::NameOf(algorithm);
    EXPECT_EQ(waved.value().checksum, baseline.value().checksum)
        << join::NameOf(algorithm);
    EXPECT_GE(mem::GetBudgetStats().wave_rounds, 2u)
        << join::NameOf(algorithm);
  }
}

}  // namespace
}  // namespace mmjoin
