// Negative-compile fixture for the thread-safety annotations.
//
// NOT built by CMake (the test glob only matches *_test.cc). Instead,
// scripts/run_static_analysis.sh compiles this TU twice with clang:
//
//   clang++ -fsyntax-only -Werror=thread-safety   <this file>   -> MUST FAIL
//   clang++ ... -DMMJOIN_NEGATIVE_FIXED           <this file>   -> MUST PASS
//
// The first run proves the MMJOIN_GUARDED_BY / MMJOIN_REQUIRES plumbing is
// live -- if the analysis ever silently stops firing (a macro edit turns the
// attributes into no-ops under clang, a wrapper loses its annotation), the
// "must fail" compile starts succeeding and the driver reports it.
//
// Keep the violations below obviously wrong; they exist to be rejected.

#include "util/annotations.h"
#include "util/mutex.h"

namespace {

class Account {
 public:
  void Deposit(long amount) {
    mmjoin::MutexLock lock(mutex_);
    balance_ += amount;
  }

#if defined(MMJOIN_NEGATIVE_FIXED)
  long Read() {
    mmjoin::MutexLock lock(mutex_);
    return balance_;
  }
  void Drain() {
    mutex_.Lock();
    balance_ = 0;
    mutex_.Unlock();
  }
#else
  // VIOLATION 1: reads a guarded member without holding the mutex.
  long Read() { return balance_; }

  // VIOLATION 2: writes a guarded member under the WRONG lock.
  void Drain() {
    mmjoin::MutexLock lock(other_mutex_);
    balance_ = 0;
  }
#endif

 private:
  mmjoin::Mutex mutex_;
  mmjoin::Mutex other_mutex_;
  long balance_ MMJOIN_GUARDED_BY(mutex_) = 0;
};

// VIOLATION 3 (unfixed build only): a REQUIRES function called lock-free.
class Ledger {
 public:
  void PostLocked(long amount) MMJOIN_REQUIRES(mutex_) { total_ += amount; }

  void Post(long amount) {
#if defined(MMJOIN_NEGATIVE_FIXED)
    mmjoin::MutexLock lock(mutex_);
    PostLocked(amount);
#else
    PostLocked(amount);
#endif
  }

 private:
  mmjoin::Mutex mutex_;
  long total_ MMJOIN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  Ledger ledger;
  ledger.Post(1);
  return static_cast<int>(account.Read());
}
