// Unit tests for the threading primitives: team, barrier, chunk ranges, and
// the task-queue scheduling orders.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "thread/task_queue.h"
#include "thread/thread_team.h"

namespace mmjoin::thread {
namespace {

TEST(RunTeam, RunsEveryThreadExactlyOnce) {
  std::vector<std::atomic<int>> counts(8);
  for (auto& c : counts) c = 0;
  RunTeam(8, [&](int tid) { counts[tid].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(RunTeam, SingleThreadInline) {
  int value = 0;
  RunTeam(1, [&](int tid) {
    EXPECT_EQ(tid, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6;
  Barrier barrier(kThreads);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  RunTeam(kThreads, [&](int tid) {
    phase1.fetch_add(1);
    barrier.ArriveAndWait();
    // After the barrier every thread must observe all phase-1 increments.
    if (phase1.load() != kThreads) violated = true;
    barrier.ArriveAndWait();  // reusable
    barrier.ArriveAndWait();
  });
  EXPECT_FALSE(violated.load());
}

TEST(ChunkRange, CoversTotalWithoutOverlap) {
  for (const std::size_t total : {0ul, 1ul, 7ul, 100ul, 1001ul}) {
    for (const int threads : {1, 2, 3, 7, 16}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int t = 0; t < threads; ++t) {
        const Range r = ChunkRange(total, threads, t);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChunkRange, NearEqualSizes) {
  for (int t = 0; t < 7; ++t) {
    const Range r = ChunkRange(100, 7, t);
    EXPECT_GE(r.size(), 14u);
    EXPECT_LE(r.size(), 15u);
  }
}

TEST(TaskQueue, LifoOrder) {
  TaskQueue queue;
  queue.Push(JoinTask{1});
  queue.Push(JoinTask{2});
  queue.Push(JoinTask{3});
  JoinTask task;
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 3u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 2u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 1u);
  EXPECT_FALSE(queue.Pop(&task));
}

TEST(TaskQueue, ConcurrentDrainYieldsEveryTaskOnce) {
  std::vector<JoinTask> initial;
  for (uint32_t p = 0; p < 1000; ++p) initial.push_back(JoinTask{p});
  TaskQueue queue(std::move(initial));

  std::vector<std::atomic<int>> seen(1000);
  for (auto& s : seen) s = 0;
  RunTeam(8, [&](int) {
    JoinTask task;
    while (queue.Pop(&task)) seen[task.partition].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(SchedulingOrder, SequentialIsIdentity) {
  const std::vector<uint32_t> order = SequentialOrder(5);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SchedulingOrder, RoundRobinCyclesNodes) {
  // 8 partitions, 4 nodes -> blocks of 2: 0,2,4,6 then 1,3,5,7.
  const std::vector<uint32_t> order = RoundRobinNodeOrder(8, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(SchedulingOrder, RoundRobinIsAPermutation) {
  for (const uint32_t p : {1u, 7u, 16u, 100u, 16384u}) {
    for (const int nodes : {1, 2, 4, 8}) {
      const std::vector<uint32_t> order = RoundRobinNodeOrder(p, nodes);
      std::set<uint32_t> unique(order.begin(), order.end());
      EXPECT_EQ(order.size(), p);
      EXPECT_EQ(unique.size(), p);
      EXPECT_EQ(*unique.rbegin(), p - 1);
    }
  }
}

TEST(SchedulingOrder, RoundRobinFirstTasksSpanAllNodes) {
  // The fix the paper proposes: the first `nodes` tasks must touch distinct
  // memory blocks so all memory controllers are busy.
  const uint32_t partitions = 16384;
  const int nodes = 4;
  const std::vector<uint32_t> order = RoundRobinNodeOrder(partitions, nodes);
  const uint32_t block = partitions / nodes;
  std::set<uint32_t> blocks;
  for (int i = 0; i < nodes; ++i) blocks.insert(order[i] / block);
  EXPECT_EQ(blocks.size(), static_cast<std::size_t>(nodes));
}

TEST(SchedulingOrder, TasksFromOrderPreservesConsumeOrder) {
  const std::vector<uint32_t> order = {5, 3, 1};
  TaskQueue queue(TasksFromOrder(order));
  JoinTask task;
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 5u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 3u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 1u);
}

}  // namespace
}  // namespace mmjoin::thread
