// Unit tests for the threading primitives: the persistent executor, team
// shim, barrier, chunk ranges, and the task-queue scheduling orders.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "numa/system.h"
#include "thread/executor.h"
#include "thread/task_queue.h"
#include "thread/thread_team.h"
#include "util/status.h"

namespace mmjoin::thread {
namespace {

TEST(RunTeam, RunsEveryThreadExactlyOnce) {
  std::vector<std::atomic<int>> counts(8);
  for (auto& c : counts) c = 0;
  RunTeam(8, [&](int tid) { counts[tid].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(RunTeam, SingleThreadInline) {
  int value = 0;
  RunTeam(1, [&](int tid) {
    EXPECT_EQ(tid, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6;
  Barrier barrier(kThreads);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  RunTeam(kThreads, [&](int tid) {
    phase1.fetch_add(1);
    barrier.ArriveAndWait();
    // After the barrier every thread must observe all phase-1 increments.
    if (phase1.load() != kThreads) violated = true;
    barrier.ArriveAndWait();  // reusable
    barrier.ArriveAndWait();
  });
  EXPECT_FALSE(violated.load());
}

TEST(ChunkRange, CoversTotalWithoutOverlap) {
  for (const std::size_t total : {0ul, 1ul, 7ul, 100ul, 1001ul}) {
    for (const int threads : {1, 2, 3, 7, 16}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int t = 0; t < threads; ++t) {
        const Range r = ChunkRange(total, threads, t);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChunkRange, NearEqualSizes) {
  for (int t = 0; t < 7; ++t) {
    const Range r = ChunkRange(100, 7, t);
    EXPECT_GE(r.size(), 14u);
    EXPECT_LE(r.size(), 15u);
  }
}

TEST(ChunkRange, MoreThreadsThanElements) {
  // num_threads > total: the first `total` threads get one element each, the
  // surplus threads get empty ranges at the boundary, never out of range.
  const std::size_t total = 3;
  const int threads = 8;
  std::size_t covered = 0;
  for (int t = 0; t < threads; ++t) {
    const Range r = ChunkRange(total, threads, t);
    EXPECT_LE(r.begin, total);
    EXPECT_LE(r.end, total);
    EXPECT_LE(r.begin, r.end);
    if (t < static_cast<int>(total)) {
      EXPECT_EQ(r.size(), 1u);
    } else {
      EXPECT_EQ(r.size(), 0u);
      EXPECT_EQ(r.begin, total);
    }
    covered += r.size();
  }
  EXPECT_EQ(covered, total);
}

TEST(Executor, PoolIsReusedAcrossManyDispatches) {
  Executor executor(8);
  EXPECT_EQ(executor.num_threads(), 8);
  EXPECT_EQ(executor.pool_size(), 8);

  std::atomic<uint64_t> sum{0};
  constexpr int kDispatches = 120;
  for (int i = 0; i < kDispatches; ++i) {
    ASSERT_TRUE(executor.Dispatch([&](const WorkerContext& ctx) {
      sum.fetch_add(static_cast<uint64_t>(ctx.thread_id) + 1);
    }).ok());
  }
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kDispatches) * (1 + 8) * 8 / 2);

  // Pool reuse: >= 100 dispatches, zero thread growth.
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.threads_spawned, 8u);
  EXPECT_EQ(executor.pool_size(), 8);
  EXPECT_EQ(stats.dispatches, static_cast<uint64_t>(kDispatches));
  EXPECT_EQ(stats.max_team_size, 8u);
}

TEST(Executor, SmallerTeamsRunOnTheSamePool) {
  Executor executor(6);
  for (const int team : {1, 2, 5, 6, 3}) {
    std::vector<std::atomic<int>> counts(team);
    for (auto& c : counts) c = 0;
    ASSERT_TRUE(executor.Dispatch(team, [&](const WorkerContext& ctx) {
      EXPECT_EQ(ctx.num_threads, team);
      counts[ctx.thread_id].fetch_add(1);
    }).ok());
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
  EXPECT_EQ(executor.stats().threads_spawned, 6u);
}

TEST(Executor, GrowsOnceForOversizedTeams) {
  Executor executor(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        executor.Dispatch(9, [&](const WorkerContext&) { ran.fetch_add(1); })
            .ok());
  }
  EXPECT_EQ(ran.load(), 90);
  // Grown to 9 on the first oversized dispatch, then reused.
  EXPECT_EQ(executor.stats().threads_spawned, 9u);
  EXPECT_EQ(executor.pool_size(), 9);
}

TEST(Executor, BarrierSeparatesPhasesAcrossEpochs) {
  Executor executor(5);
  // Run several epochs; within each, three barrier-separated phases must
  // never observe a stale previous phase (the reusable-barrier guarantee all
  // join algorithms depend on).
  for (int epoch = 0; epoch < 25; ++epoch) {
    std::atomic<int> phase1{0};
    std::atomic<int> phase2{0};
    std::atomic<bool> violated{false};
    ASSERT_TRUE(executor.Dispatch([&](const WorkerContext& ctx) {
      phase1.fetch_add(1);
      ctx.barrier->ArriveAndWait();
      if (phase1.load() != ctx.num_threads) violated = true;
      phase2.fetch_add(1);
      ctx.barrier->ArriveAndWait();
      if (phase2.load() != ctx.num_threads) violated = true;
      ctx.barrier->ArriveAndWait();  // trailing barrier reuses cleanly
    }).ok());
    EXPECT_FALSE(violated.load());
  }
}

TEST(Executor, NodeAssignmentFollowsTopology) {
  const numa::Topology topology(4);
  Executor executor(8, /*num_nodes=*/4);
  std::vector<int> nodes(8, -1);
  ASSERT_TRUE(executor.Dispatch([&](const WorkerContext& ctx) {
    nodes[ctx.thread_id] = ctx.node;
  }).ok());
  for (int tid = 0; tid < 8; ++tid) {
    EXPECT_EQ(nodes[tid], topology.NodeOfThread(tid, 8)) << tid;
  }
  // The placement is stable: a second dispatch sees identical nodes.
  ASSERT_TRUE(executor.Dispatch([&](const WorkerContext& ctx) {
    EXPECT_EQ(ctx.node, nodes[ctx.thread_id]);
  }).ok());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> hits(1001);
  for (auto& h : hits) h = 0;
  ASSERT_TRUE(
      executor
          .ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end,
                                        const WorkerContext&) {
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          })
          .ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, TotalSmallerThanTeam) {
  Executor executor(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h = 0;
  std::atomic<int> nonempty_chunks{0};
  ASSERT_TRUE(
      executor
          .ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end,
                                        const WorkerContext&) {
            nonempty_chunks.fetch_add(1);
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          })
          .ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Surplus workers received empty chunks and never saw the closure.
  EXPECT_EQ(nonempty_chunks.load(), 3);
}

TEST(ParallelFor, TotalZeroDispatchesNothing) {
  Executor executor(4);
  const uint64_t before = executor.stats().dispatches;
  std::atomic<int> calls{0};
  ASSERT_TRUE(executor
                  .ParallelFor(0, [&](std::size_t, std::size_t,
                                      const WorkerContext&) {
                    calls.fetch_add(1);
                  })
                  .ok());
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(executor.stats().dispatches, before);
}

TEST(RunTeamShim, RoutesOverThePersistentPool) {
  // RunTeam is a shim over the process-wide executor: consecutive calls must
  // not grow the pool.
  RunTeam(4, [](int) {});
  const ExecutorStats before = GlobalExecutor().stats();
  for (int i = 0; i < 50; ++i) {
    RunTeam(4, [](int) {});
  }
  const ExecutorStats after = GlobalExecutor().stats();
  EXPECT_EQ(after.threads_spawned, before.threads_spawned);
  EXPECT_EQ(after.dispatches, before.dispatches + 50);
}

TEST(TaskQueue, LifoOrder) {
  TaskQueue queue;
  queue.Push(JoinTask{1});
  queue.Push(JoinTask{2});
  queue.Push(JoinTask{3});
  JoinTask task;
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 3u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 2u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 1u);
  EXPECT_FALSE(queue.Pop(&task));
}

TEST(TaskQueue, ConcurrentDrainYieldsEveryTaskOnce) {
  std::vector<JoinTask> initial;
  for (uint32_t p = 0; p < 1000; ++p) initial.push_back(JoinTask{p});
  TaskQueue queue(std::move(initial));

  std::vector<std::atomic<int>> seen(1000);
  for (auto& s : seen) s = 0;
  RunTeam(8, [&](int) {
    JoinTask task;
    while (queue.Pop(&task)) seen[task.partition].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(SchedulingOrder, SequentialIsIdentity) {
  const std::vector<uint32_t> order = SequentialOrder(5);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SchedulingOrder, RoundRobinCyclesNodes) {
  // 8 partitions, 4 nodes -> blocks of 2: 0,2,4,6 then 1,3,5,7.
  const std::vector<uint32_t> order = RoundRobinNodeOrder(8, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(SchedulingOrder, RoundRobinIsAPermutation) {
  for (const uint32_t p : {1u, 7u, 16u, 100u, 16384u}) {
    for (const int nodes : {1, 2, 4, 8}) {
      const std::vector<uint32_t> order = RoundRobinNodeOrder(p, nodes);
      std::set<uint32_t> unique(order.begin(), order.end());
      EXPECT_EQ(order.size(), p);
      EXPECT_EQ(unique.size(), p);
      EXPECT_EQ(*unique.rbegin(), p - 1);
    }
  }
}

TEST(SchedulingOrder, RoundRobinFirstTasksSpanAllNodes) {
  // The fix the paper proposes: the first `nodes` tasks must touch distinct
  // memory blocks so all memory controllers are busy.
  const uint32_t partitions = 16384;
  const int nodes = 4;
  const std::vector<uint32_t> order = RoundRobinNodeOrder(partitions, nodes);
  const uint32_t block = partitions / nodes;
  std::set<uint32_t> blocks;
  for (int i = 0; i < nodes; ++i) blocks.insert(order[i] / block);
  EXPECT_EQ(blocks.size(), static_cast<std::size_t>(nodes));
}

TEST(SchedulingOrder, TasksFromOrderPreservesConsumeOrder) {
  const std::vector<uint32_t> order = {5, 3, 1};
  TaskQueue queue(TasksFromOrder(order));
  JoinTask task;
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 5u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 3u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 1u);
}

// --- ShardedTaskQueue -----------------------------------------------------

std::vector<int> AllShards(int n) {
  std::vector<int> shards(n);
  std::iota(shards.begin(), shards.end(), 0);
  return shards;
}

TEST(ShardedTaskQueue, LocalPopsFollowSeedOrderThenRuntimeLifo) {
  ShardedTaskQueue queue(4);
  queue.BeginRun(AllShards(4), nullptr);
  // Seeds arrive in consume order; local pops must replay it exactly.
  queue.SeedTask(0, JoinTask{1});
  queue.SeedTask(0, JoinTask{2});
  queue.SeedTask(0, JoinTask{3});
  JoinTask task;
  int stolen_from = -2;
  ASSERT_TRUE(queue.Pop(0, &task, &stolen_from));
  EXPECT_EQ(task.partition, 1u);
  EXPECT_EQ(stolen_from, -1);  // local
  // Runtime pushes (skew splits) are LIFO relative to remaining seeds.
  queue.Push(0, JoinTask{9});
  ASSERT_TRUE(queue.Pop(0, &task));
  EXPECT_EQ(task.partition, 9u);
  ASSERT_TRUE(queue.Pop(0, &task));
  EXPECT_EQ(task.partition, 2u);
  ASSERT_TRUE(queue.Pop(0, &task));
  EXPECT_EQ(task.partition, 3u);
  EXPECT_FALSE(queue.Pop(0, &task));
}

TEST(ShardedTaskQueue, SingleActiveShardMatchesGlobalQueueOrder) {
  // The 1-thread contract: with one active shard, every seed remaps there
  // and the consume order is bit-identical to the old global LIFO queue.
  const std::vector<uint32_t> order = RoundRobinNodeOrder(16, 4);
  TaskQueue global(TasksFromOrder(order));
  ShardedTaskQueue sharded(4);
  sharded.BeginRun({0}, nullptr);
  for (const uint32_t p : order) {
    // Preferred shards vary (as the real seeder's NodeOfOffset does) but
    // only shard 0 is active.
    sharded.SeedTask(static_cast<int>(p) % 4, JoinTask{p});
  }
  JoinTask from_global, from_sharded;
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(global.Pop(&from_global));
    ASSERT_TRUE(sharded.Pop(0, &from_sharded));
    EXPECT_EQ(from_sharded.partition, from_global.partition) << "pop " << i;
  }
  EXPECT_FALSE(global.Pop(&from_global));
  EXPECT_FALSE(sharded.Pop(0, &from_sharded));
}

TEST(ShardedTaskQueue, StealsWalkNodesByDistanceAndTakeFifoEnd) {
  // 4-node ring: from node 0 the steal order is [1, 3, 2] (both neighbours
  // before the opposite node, ties toward the lower index).
  ShardedTaskQueue queue(4);
  queue.BeginRun(AllShards(4), nullptr);
  queue.SeedTask(1, JoinTask{10});
  queue.SeedTask(1, JoinTask{11});
  queue.SeedTask(2, JoinTask{20});
  queue.SeedTask(3, JoinTask{30});

  JoinTask task;
  int stolen_from = -2;
  // Shard 0 is empty, so every pop steals. The FIFO (front) end of shard 1
  // holds its *latest* consume-order seed -- the task its owner would have
  // run last.
  ASSERT_TRUE(queue.Pop(0, &task, &stolen_from));
  EXPECT_EQ(stolen_from, 1);
  EXPECT_EQ(task.partition, 11u);
  ASSERT_TRUE(queue.Pop(0, &task, &stolen_from));
  EXPECT_EQ(stolen_from, 1);
  EXPECT_EQ(task.partition, 10u);
  ASSERT_TRUE(queue.Pop(0, &task, &stolen_from));
  EXPECT_EQ(stolen_from, 3);
  EXPECT_EQ(task.partition, 30u);
  ASSERT_TRUE(queue.Pop(0, &task, &stolen_from));
  EXPECT_EQ(stolen_from, 2);
  EXPECT_EQ(task.partition, 20u);
  EXPECT_FALSE(queue.Pop(0, &task, &stolen_from));

  const ShardedTaskQueue::RunStats stats = queue.run_stats();
  EXPECT_EQ(stats.local_pops, 0u);
  EXPECT_EQ(stats.tasks_stolen, 4u);
}

TEST(ShardedTaskQueue, StealsAreCountedInNumaSystemMatrix) {
  numa::NumaSystem system(4);
  ShardedTaskQueue queue(4);
  queue.BeginRun(AllShards(4), &system);
  queue.SeedTask(2, JoinTask{1});
  queue.SeedTask(2, JoinTask{2});
  JoinTask task;
  ASSERT_TRUE(queue.Pop(0, &task));  // steals 2 -> 0
  ASSERT_TRUE(queue.Pop(1, &task));  // steals 2 -> 1
  EXPECT_EQ(system.TaskSteals(0, 2), 1u);
  EXPECT_EQ(system.TaskSteals(1, 2), 1u);
  EXPECT_EQ(system.TaskSteals(2, 0), 0u);
  EXPECT_EQ(system.TotalTaskSteals(), 2u);
}

TEST(ShardedTaskQueue, InactiveShardSeedsRemapOntoActiveShards) {
  ShardedTaskQueue queue(4);
  // Only nodes 0 and 2 host workers (e.g. a 2-thread team).
  queue.BeginRun({0, 2}, nullptr);
  queue.SeedTask(0, JoinTask{0});
  queue.SeedTask(1, JoinTask{1});  // inactive -> remapped
  queue.SeedTask(2, JoinTask{2});
  queue.SeedTask(3, JoinTask{3});  // inactive -> remapped
  EXPECT_EQ(queue.SizeForTest(), 4u);
  // Draining only the active shards must yield every task: nothing may
  // strand on a shard nobody polls locally.
  std::set<uint32_t> seen;
  JoinTask task;
  while (queue.Pop(0, &task)) seen.insert(task.partition);
  while (queue.Pop(2, &task)) seen.insert(task.partition);
  EXPECT_EQ(seen, (std::set<uint32_t>{0, 1, 2, 3}));
}

TEST(ShardedTaskQueue, BeginRunDropsStaleTasksFromAbortedRuns) {
  ShardedTaskQueue queue(4);
  queue.BeginRun(AllShards(4), nullptr);
  queue.SeedTask(0, JoinTask{1});
  queue.SeedTask(3, JoinTask{2});
  // An aborted join leaves tasks behind; the next run must not see them.
  queue.BeginRun(AllShards(4), nullptr);
  EXPECT_EQ(queue.SizeForTest(), 0u);
  JoinTask task;
  EXPECT_FALSE(queue.Pop(0, &task));
  EXPECT_EQ(queue.run_stats().tasks_stolen, 0u);
}

TEST(ShardedTaskQueue, ConcurrentDrainWithSkewPushesLosesNothing) {
  // Empty-queue termination under concurrent push-from-skew-split: workers
  // drain while the first kSplits pops each push one extra task. Every
  // task must be seen exactly once and every worker must terminate.
  constexpr uint32_t kSeeded = 1200;
  constexpr uint32_t kSplits = 64;
  ShardedTaskQueue queue(4);
  queue.BeginRun(AllShards(4), nullptr);
  for (uint32_t p = 0; p < kSeeded; ++p) {
    queue.SeedTask(static_cast<int>(p) % 4, JoinTask{p});
  }
  std::vector<std::atomic<int>> seen(kSeeded + kSplits);
  for (auto& s : seen) s = 0;
  std::atomic<uint32_t> next_split{0};
  RunTeam(8, [&](int tid) {
    const int node = numa::Topology(4).NodeOfThread(tid, 8);
    JoinTask task;
    while (queue.Pop(node, &task)) {
      seen[task.partition].fetch_add(1, std::memory_order_relaxed);
      const uint32_t split =
          next_split.fetch_add(1, std::memory_order_relaxed);
      if (split < kSplits) {
        queue.Push(node, JoinTask{kSeeded + split});
      }
    }
  });
  for (std::size_t p = 0; p < seen.size(); ++p) {
    EXPECT_EQ(seen[p].load(), 1) << "task " << p;
  }
  EXPECT_EQ(queue.SizeForTest(), 0u);
  const ShardedTaskQueue::RunStats stats = queue.run_stats();
  EXPECT_EQ(stats.local_pops + stats.tasks_stolen,
            uint64_t{kSeeded} + kSplits);
}

// --- BuildSkewTasks -------------------------------------------------------

TEST(BuildSkewTasks, UnskewedInputYieldsOneTaskPerPartition) {
  const std::vector<uint64_t> sizes = {100, 100, 100, 100};
  const SkewTaskList list =
      BuildSkewTasks(sizes, SequentialOrder(4), /*skew_factor=*/4,
                     /*probe_size=*/400)
          .value();
  ASSERT_EQ(list.consume_order.size(), 4u);
  EXPECT_EQ(list.skew_slices, 0u);
  EXPECT_EQ(list.skew_partitions, 0u);
  EXPECT_TRUE(list.skewed_partitions.empty());
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(list.consume_order[p].partition, p);
    EXPECT_EQ(list.consume_order[p].probe_slice_count, 1u);
  }
}

TEST(BuildSkewTasks, SkewedPartitionSplitsIntoSlices) {
  // avg = 1200 / 3 = 400, threshold = 2 * 400 = 800: partition 1 (1000
  // tuples) splits into ceil(1000 / 800) = 2 slices.
  const std::vector<uint64_t> sizes = {100, 1000, 100};
  const SkewTaskList list =
      BuildSkewTasks(sizes, SequentialOrder(3), 2, 1200).value();
  ASSERT_EQ(list.consume_order.size(), 4u);
  EXPECT_EQ(list.skew_slices, 1u);      // tasks beyond one per partition
  EXPECT_EQ(list.skew_partitions, 1u);  // partitions that were split
  EXPECT_EQ(list.skewed_partitions, (std::vector<uint32_t>{1}));
  EXPECT_EQ(list.consume_order.size(),
            sizes.size() + list.skew_slices);  // counter identity
  EXPECT_EQ(list.consume_order[1].partition, 1u);
  EXPECT_EQ(list.consume_order[1].probe_slice, 0u);
  EXPECT_EQ(list.consume_order[1].probe_slice_count, 2u);
  EXPECT_EQ(list.consume_order[2].probe_slice, 1u);
}

TEST(BuildSkewTasks, ExtremeSkewClampsInsteadOfTruncating) {
  // Regression: one partition of 2^33 tuples with avg 1 and factor 1 used
  // to compute 2^33 slices and truncate the uint32_t cast to *zero*,
  // corrupting probe_slice_count (division by zero downstream). The slice
  // count must clamp to the explicit cap instead.
  const std::vector<uint64_t> sizes = {uint64_t{1} << 33};
  const SkewTaskList list =
      BuildSkewTasks(sizes, SequentialOrder(1), /*skew_factor=*/1,
                     /*probe_size=*/1)
          .value();
  ASSERT_FALSE(list.consume_order.empty());
  EXPECT_EQ(list.consume_order.size(), uint64_t{kMaxProbeSlicesPerPartition});
  for (const JoinTask& task : list.consume_order) {
    EXPECT_EQ(task.probe_slice_count, kMaxProbeSlicesPerPartition);
    EXPECT_GE(task.probe_slice_count, 1u);  // never zero
  }
}

TEST(BuildSkewTasks, ThresholdOverflowIsAnError) {
  // avg * skew_factor would overflow uint64: reported, not wrapped.
  const std::vector<uint64_t> sizes = {10};
  const auto result = BuildSkewTasks(sizes, SequentialOrder(1),
                                     /*skew_factor=*/1u << 31,
                                     /*probe_size=*/uint64_t{1} << 40);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuildSkewTasks, MaxSlicesCapHonored) {
  // CPR caps slices at its chunk count.
  const std::vector<uint64_t> sizes = {1000, 8};
  const SkewTaskList list =
      BuildSkewTasks(sizes, SequentialOrder(2), 1, 16, /*max_slices=*/4)
          .value();
  EXPECT_EQ(list.consume_order[0].probe_slice_count, 4u);
  EXPECT_EQ(list.skew_slices, 3u);
  EXPECT_EQ(list.skew_partitions, 1u);
}

}  // namespace
}  // namespace mmjoin::thread
