// Unit tests for the threading primitives: the persistent executor, team
// shim, barrier, chunk ranges, and the task-queue scheduling orders.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "thread/executor.h"
#include "thread/task_queue.h"
#include "thread/thread_team.h"

namespace mmjoin::thread {
namespace {

TEST(RunTeam, RunsEveryThreadExactlyOnce) {
  std::vector<std::atomic<int>> counts(8);
  for (auto& c : counts) c = 0;
  RunTeam(8, [&](int tid) { counts[tid].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(RunTeam, SingleThreadInline) {
  int value = 0;
  RunTeam(1, [&](int tid) {
    EXPECT_EQ(tid, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6;
  Barrier barrier(kThreads);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  RunTeam(kThreads, [&](int tid) {
    phase1.fetch_add(1);
    barrier.ArriveAndWait();
    // After the barrier every thread must observe all phase-1 increments.
    if (phase1.load() != kThreads) violated = true;
    barrier.ArriveAndWait();  // reusable
    barrier.ArriveAndWait();
  });
  EXPECT_FALSE(violated.load());
}

TEST(ChunkRange, CoversTotalWithoutOverlap) {
  for (const std::size_t total : {0ul, 1ul, 7ul, 100ul, 1001ul}) {
    for (const int threads : {1, 2, 3, 7, 16}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int t = 0; t < threads; ++t) {
        const Range r = ChunkRange(total, threads, t);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChunkRange, NearEqualSizes) {
  for (int t = 0; t < 7; ++t) {
    const Range r = ChunkRange(100, 7, t);
    EXPECT_GE(r.size(), 14u);
    EXPECT_LE(r.size(), 15u);
  }
}

TEST(ChunkRange, MoreThreadsThanElements) {
  // num_threads > total: the first `total` threads get one element each, the
  // surplus threads get empty ranges at the boundary, never out of range.
  const std::size_t total = 3;
  const int threads = 8;
  std::size_t covered = 0;
  for (int t = 0; t < threads; ++t) {
    const Range r = ChunkRange(total, threads, t);
    EXPECT_LE(r.begin, total);
    EXPECT_LE(r.end, total);
    EXPECT_LE(r.begin, r.end);
    if (t < static_cast<int>(total)) {
      EXPECT_EQ(r.size(), 1u);
    } else {
      EXPECT_EQ(r.size(), 0u);
      EXPECT_EQ(r.begin, total);
    }
    covered += r.size();
  }
  EXPECT_EQ(covered, total);
}

TEST(Executor, PoolIsReusedAcrossManyDispatches) {
  Executor executor(8);
  EXPECT_EQ(executor.num_threads(), 8);
  EXPECT_EQ(executor.pool_size(), 8);

  std::atomic<uint64_t> sum{0};
  constexpr int kDispatches = 120;
  for (int i = 0; i < kDispatches; ++i) {
    executor.Dispatch([&](const WorkerContext& ctx) {
      sum.fetch_add(static_cast<uint64_t>(ctx.thread_id) + 1);
    });
  }
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kDispatches) * (1 + 8) * 8 / 2);

  // Pool reuse: >= 100 dispatches, zero thread growth.
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.threads_spawned, 8u);
  EXPECT_EQ(executor.pool_size(), 8);
  EXPECT_EQ(stats.dispatches, static_cast<uint64_t>(kDispatches));
  EXPECT_EQ(stats.max_team_size, 8u);
}

TEST(Executor, SmallerTeamsRunOnTheSamePool) {
  Executor executor(6);
  for (const int team : {1, 2, 5, 6, 3}) {
    std::vector<std::atomic<int>> counts(team);
    for (auto& c : counts) c = 0;
    executor.Dispatch(team, [&](const WorkerContext& ctx) {
      EXPECT_EQ(ctx.num_threads, team);
      counts[ctx.thread_id].fetch_add(1);
    });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
  EXPECT_EQ(executor.stats().threads_spawned, 6u);
}

TEST(Executor, GrowsOnceForOversizedTeams) {
  Executor executor(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    executor.Dispatch(9, [&](const WorkerContext&) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 90);
  // Grown to 9 on the first oversized dispatch, then reused.
  EXPECT_EQ(executor.stats().threads_spawned, 9u);
  EXPECT_EQ(executor.pool_size(), 9);
}

TEST(Executor, BarrierSeparatesPhasesAcrossEpochs) {
  Executor executor(5);
  // Run several epochs; within each, three barrier-separated phases must
  // never observe a stale previous phase (the reusable-barrier guarantee all
  // join algorithms depend on).
  for (int epoch = 0; epoch < 25; ++epoch) {
    std::atomic<int> phase1{0};
    std::atomic<int> phase2{0};
    std::atomic<bool> violated{false};
    executor.Dispatch([&](const WorkerContext& ctx) {
      phase1.fetch_add(1);
      ctx.barrier->ArriveAndWait();
      if (phase1.load() != ctx.num_threads) violated = true;
      phase2.fetch_add(1);
      ctx.barrier->ArriveAndWait();
      if (phase2.load() != ctx.num_threads) violated = true;
      ctx.barrier->ArriveAndWait();  // trailing barrier reuses cleanly
    });
    EXPECT_FALSE(violated.load());
  }
}

TEST(Executor, NodeAssignmentFollowsTopology) {
  const numa::Topology topology(4);
  Executor executor(8, /*num_nodes=*/4);
  std::vector<int> nodes(8, -1);
  executor.Dispatch([&](const WorkerContext& ctx) {
    nodes[ctx.thread_id] = ctx.node;
  });
  for (int tid = 0; tid < 8; ++tid) {
    EXPECT_EQ(nodes[tid], topology.NodeOfThread(tid, 8)) << tid;
  }
  // The placement is stable: a second dispatch sees identical nodes.
  executor.Dispatch([&](const WorkerContext& ctx) {
    EXPECT_EQ(ctx.node, nodes[ctx.thread_id]);
  });
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> hits(1001);
  for (auto& h : hits) h = 0;
  executor.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end,
                                        const WorkerContext&) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, TotalSmallerThanTeam) {
  Executor executor(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h = 0;
  std::atomic<int> nonempty_chunks{0};
  executor.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end,
                                        const WorkerContext&) {
    nonempty_chunks.fetch_add(1);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Surplus workers received empty chunks and never saw the closure.
  EXPECT_EQ(nonempty_chunks.load(), 3);
}

TEST(ParallelFor, TotalZeroDispatchesNothing) {
  Executor executor(4);
  const uint64_t before = executor.stats().dispatches;
  std::atomic<int> calls{0};
  executor.ParallelFor(0, [&](std::size_t, std::size_t,
                              const WorkerContext&) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(executor.stats().dispatches, before);
}

TEST(RunTeamShim, RoutesOverThePersistentPool) {
  // RunTeam is a shim over the process-wide executor: consecutive calls must
  // not grow the pool.
  RunTeam(4, [](int) {});
  const ExecutorStats before = GlobalExecutor().stats();
  for (int i = 0; i < 50; ++i) {
    RunTeam(4, [](int) {});
  }
  const ExecutorStats after = GlobalExecutor().stats();
  EXPECT_EQ(after.threads_spawned, before.threads_spawned);
  EXPECT_EQ(after.dispatches, before.dispatches + 50);
}

TEST(TaskQueue, LifoOrder) {
  TaskQueue queue;
  queue.Push(JoinTask{1});
  queue.Push(JoinTask{2});
  queue.Push(JoinTask{3});
  JoinTask task;
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 3u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 2u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 1u);
  EXPECT_FALSE(queue.Pop(&task));
}

TEST(TaskQueue, ConcurrentDrainYieldsEveryTaskOnce) {
  std::vector<JoinTask> initial;
  for (uint32_t p = 0; p < 1000; ++p) initial.push_back(JoinTask{p});
  TaskQueue queue(std::move(initial));

  std::vector<std::atomic<int>> seen(1000);
  for (auto& s : seen) s = 0;
  RunTeam(8, [&](int) {
    JoinTask task;
    while (queue.Pop(&task)) seen[task.partition].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(SchedulingOrder, SequentialIsIdentity) {
  const std::vector<uint32_t> order = SequentialOrder(5);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SchedulingOrder, RoundRobinCyclesNodes) {
  // 8 partitions, 4 nodes -> blocks of 2: 0,2,4,6 then 1,3,5,7.
  const std::vector<uint32_t> order = RoundRobinNodeOrder(8, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(SchedulingOrder, RoundRobinIsAPermutation) {
  for (const uint32_t p : {1u, 7u, 16u, 100u, 16384u}) {
    for (const int nodes : {1, 2, 4, 8}) {
      const std::vector<uint32_t> order = RoundRobinNodeOrder(p, nodes);
      std::set<uint32_t> unique(order.begin(), order.end());
      EXPECT_EQ(order.size(), p);
      EXPECT_EQ(unique.size(), p);
      EXPECT_EQ(*unique.rbegin(), p - 1);
    }
  }
}

TEST(SchedulingOrder, RoundRobinFirstTasksSpanAllNodes) {
  // The fix the paper proposes: the first `nodes` tasks must touch distinct
  // memory blocks so all memory controllers are busy.
  const uint32_t partitions = 16384;
  const int nodes = 4;
  const std::vector<uint32_t> order = RoundRobinNodeOrder(partitions, nodes);
  const uint32_t block = partitions / nodes;
  std::set<uint32_t> blocks;
  for (int i = 0; i < nodes; ++i) blocks.insert(order[i] / block);
  EXPECT_EQ(blocks.size(), static_cast<std::size_t>(nodes));
}

TEST(SchedulingOrder, TasksFromOrderPreservesConsumeOrder) {
  const std::vector<uint32_t> order = {5, 3, 1};
  TaskQueue queue(TasksFromOrder(order));
  JoinTask task;
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 5u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 3u);
  ASSERT_TRUE(queue.Pop(&task));
  EXPECT_EQ(task.partition, 1u);
}

}  // namespace
}  // namespace mmjoin::thread
