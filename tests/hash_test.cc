// Unit and property tests for the four hash-table flavours: chained,
// lock-free linear probing, concise (CHT), and array.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "hash/array_table.h"
#include "hash/chained_table.h"
#include "hash/concise_table.h"
#include "hash/hash_functions.h"
#include "hash/linear_probing_table.h"
#include "numa/system.h"
#include "thread/thread_team.h"
#include "util/rng.h"

namespace mmjoin::hash {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

std::vector<Tuple> RandomTuples(std::size_t n, uint32_t key_range,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples(n);
  for (std::size_t i = 0; i < n; ++i) {
    tuples[i] = Tuple{static_cast<uint32_t>(rng.NextBelow(key_range)),
                      static_cast<uint32_t>(i)};
  }
  return tuples;
}

// Ground truth: key -> sorted payloads.
std::map<uint32_t, std::vector<uint32_t>> GroupByKey(
    const std::vector<Tuple>& tuples) {
  std::map<uint32_t, std::vector<uint32_t>> groups;
  for (const Tuple& t : tuples) groups[t.key].push_back(t.payload);
  for (auto& [key, payloads] : groups) {
    std::sort(payloads.begin(), payloads.end());
  }
  return groups;
}

template <typename Table>
std::vector<uint32_t> CollectMatches(const Table& table, uint32_t key) {
  std::vector<uint32_t> payloads;
  table.Probe(key, [&](Tuple t) {
    EXPECT_EQ(t.key, key);
    payloads.push_back(t.payload);
  });
  std::sort(payloads.begin(), payloads.end());
  return payloads;
}

// ---- Hash functions --------------------------------------------------------

TEST(HashFunctions, IdentityAndShift) {
  EXPECT_EQ(IdentityHash{}(1234u), 1234u);
  EXPECT_EQ((RadixShiftHash{4})(0xF3u), 0xFu);
  EXPECT_EQ((RadixShiftHash{0})(77u), 77u);
}

TEST(HashFunctions, MurmurAvalanches) {
  MurmurHash h;
  EXPECT_NE(h(1), h(2));
  // Flipping one input bit flips roughly half the output bits.
  int diff = std::popcount(h(12345u) ^ h(12344u));
  EXPECT_GT(diff, 8);
  EXPECT_LT(diff, 24);
}

TEST(HashFunctions, FibonacciAndCrcDiffer) {
  EXPECT_NE(FibonacciHash{}(42), FibonacciHash{}(43));
  EXPECT_NE(Crc32Hash{}(42), Crc32Hash{}(43));
}

// ---- Linear probing table --------------------------------------------------

TEST(LinearProbingTable, SerialInsertAndProbe) {
  const auto tuples = RandomTuples(5000, 2000, 1);
  LinearProbingTable<MurmurHash> table(System(), tuples.size(),
                                       numa::Placement::kLocal);
  for (const Tuple& t : tuples) table.InsertSerial(t);

  const auto groups = GroupByKey(tuples);
  for (const auto& [key, payloads] : groups) {
    EXPECT_EQ(CollectMatches(table, key), payloads);
  }
}

TEST(LinearProbingTable, MissesReturnZero) {
  LinearProbingTable<MurmurHash> table(System(), 100,
                                       numa::Placement::kLocal);
  table.InsertSerial(Tuple{5, 50});
  uint64_t count = table.Probe(6, [](Tuple) {});
  EXPECT_EQ(count, 0u);
  count = table.ProbeUnique(6, [](Tuple) {});
  EXPECT_EQ(count, 0u);
}

TEST(LinearProbingTable, ProbeUniqueStopsAtFirstMatch) {
  LinearProbingTable<IdentityHash> table(System(), 100,
                                         numa::Placement::kLocal);
  for (uint32_t k = 0; k < 50; ++k) table.InsertSerial(Tuple{k, k * 2});
  uint32_t payload = 0;
  const uint64_t count =
      table.ProbeUnique(30, [&](Tuple t) { payload = t.payload; });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(payload, 60u);
}

TEST(LinearProbingTable, ConcurrentInsertsAllVisible) {
  const auto tuples = RandomTuples(40000, 1u << 30, 2);
  LinearProbingTable<MurmurHash> table(System(), tuples.size(),
                                       numa::Placement::kInterleavedPages);
  thread::RunTeam(8, [&](int tid) {
    const thread::Range range = thread::ChunkRange(tuples.size(), 8, tid);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      table.InsertConcurrent(tuples[i]);
    }
  });
  const auto groups = GroupByKey(tuples);
  for (const auto& [key, payloads] : groups) {
    ASSERT_EQ(CollectMatches(table, key), payloads) << "key=" << key;
  }
}

TEST(LinearProbingTable, ResetShrinksAndClears) {
  LinearProbingTable<IdentityHash> table(System(), 10000,
                                         numa::Placement::kLocal);
  table.InsertSerial(Tuple{7, 70});
  table.Reset(100);
  EXPECT_EQ(table.Probe(7, [](Tuple) {}), 0u);
  EXPECT_LE(table.capacity(), 256u);
  table.InsertSerial(Tuple{8, 80});
  EXPECT_EQ(table.Probe(8, [](Tuple) {}), 1u);
}

// ---- Chained table ---------------------------------------------------------

TEST(ChainedHashTable, BucketLayoutIs32Bytes) {
  EXPECT_EQ(sizeof(ChainedHashTable<IdentityHash>::Bucket), 32u);
}

TEST(ChainedHashTable, SerialInsertAndProbe) {
  const auto tuples = RandomTuples(5000, 1500, 3);
  ChainedHashTable<MurmurHash> table(System(), tuples.size(),
                                     numa::Placement::kLocal);
  for (const Tuple& t : tuples) table.InsertSerial(t);
  const auto groups = GroupByKey(tuples);
  for (const auto& [key, payloads] : groups) {
    EXPECT_EQ(CollectMatches(table, key), payloads);
  }
}

TEST(ChainedHashTable, OverflowChainsWork) {
  // Constant hash forces every tuple into one chain.
  struct ConstHash {
    uint32_t operator()(uint32_t) const { return 0; }
  };
  ChainedHashTable<ConstHash> table(System(), 100, numa::Placement::kLocal);
  for (uint32_t i = 0; i < 100; ++i) table.InsertSerial(Tuple{i, i});
  EXPECT_GT(table.overflow_buckets_used(), 0u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Probe(i, [](Tuple) {}), 1u);
  }
  EXPECT_EQ(table.Probe(200, [](Tuple) {}), 0u);
}

TEST(ChainedHashTable, ConcurrentInsertsAllVisible) {
  const auto tuples = RandomTuples(30000, 1u << 28, 4);
  ChainedHashTable<MurmurHash> table(System(), tuples.size(),
                                     numa::Placement::kInterleavedPages);
  thread::RunTeam(8, [&](int tid) {
    const thread::Range range = thread::ChunkRange(tuples.size(), 8, tid);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      table.InsertConcurrent(tuples[i]);
    }
  });
  const auto groups = GroupByKey(tuples);
  for (const auto& [key, payloads] : groups) {
    ASSERT_EQ(CollectMatches(table, key), payloads) << "key=" << key;
  }
}

TEST(ChainedHashTable, ResetReusesMemory) {
  ChainedHashTable<IdentityHash> table(System(), 4096,
                                       numa::Placement::kLocal);
  for (uint32_t i = 0; i < 4096; ++i) table.InsertSerial(Tuple{i, i});
  table.Reset(64);
  EXPECT_EQ(table.Probe(1, [](Tuple) {}), 0u);
  table.InsertSerial(Tuple{1, 10});
  uint32_t payload = 0;
  table.Probe(1, [&](Tuple t) { payload = t.payload; });
  EXPECT_EQ(payload, 10u);
}

// ---- Concise hash table ----------------------------------------------------

TEST(ConciseHashTable, SerialBuildDenseKeys) {
  std::vector<Tuple> tuples;
  for (uint32_t i = 0; i < 4096; ++i) tuples.push_back(Tuple{i, i * 3});
  ConciseHashTable table(System(), tuples.size(), numa::Placement::kLocal);
  table.BuildSerial(ConstTupleSpan(tuples.data(), tuples.size()));

  EXPECT_EQ(table.overflow_size(), 0u);  // dense keys, 8x buckets: no spill
  for (uint32_t i = 0; i < 4096; ++i) {
    uint32_t payload = 0;
    EXPECT_EQ(table.ProbeUnique(i, [&](Tuple t) { payload = t.payload; }),
              1u);
    EXPECT_EQ(payload, i * 3);
  }
  EXPECT_EQ(table.Probe(5000, [](Tuple) {}), 0u);
}

TEST(ConciseHashTable, RandomKeysWithCollisionsAndOverflow) {
  const auto tuples = RandomTuples(8000, 1u << 30, 5);
  ConciseHashTable table(System(), tuples.size(), numa::Placement::kLocal);
  table.BuildSerial(ConstTupleSpan(tuples.data(), tuples.size()));
  const auto groups = GroupByKey(tuples);
  for (const auto& [key, payloads] : groups) {
    ASSERT_EQ(CollectMatches(table, key), payloads) << "key=" << key;
  }
}

TEST(ConciseHashTable, DuplicateKeysAllFound) {
  std::vector<Tuple> tuples;
  for (uint32_t i = 0; i < 100; ++i) tuples.push_back(Tuple{7, i});
  ConciseHashTable table(System(), tuples.size(), numa::Placement::kLocal);
  table.BuildSerial(ConstTupleSpan(tuples.data(), tuples.size()));
  EXPECT_EQ(table.Probe(7, [](Tuple) {}), 100u);
  // ProbeUnique still reports exactly one.
  EXPECT_EQ(table.ProbeUnique(7, [](Tuple) {}), 1u);
}

TEST(ConciseHashTable, MemoryIsConcise) {
  // CHT's selling point: ~n tuples + bitmap, far below a load-0.5 linear
  // table.
  const uint64_t n = 1 << 16;
  ConciseHashTable table(System(), n, numa::Placement::kLocal);
  // 8 B/tuple dense array + 16 B per 64 buckets (8n buckets).
  EXPECT_LE(table.memory_bytes(), n * 8 + (8 * n / 64) * 16 + 1024);
}

TEST(ConciseHashTable, RegionsAreGroupAligned) {
  ConciseHashTable table(System(), 10000, numa::Placement::kLocal);
  for (int t = 0; t < 7; ++t) {
    const auto region = table.RegionForThread(t, 7);
    EXPECT_EQ(region.begin_bucket % 64, 0u);
    EXPECT_EQ(region.end_bucket % 64, 0u);
    EXPECT_LE(region.end_bucket, table.num_buckets());
  }
  EXPECT_EQ(table.RegionForThread(6, 7).end_bucket, table.num_buckets());
}

// ---- Array table -----------------------------------------------------------

TEST(ArrayTable, DenseInsertAndProbe) {
  hash::ArrayTable table(System(), 1000, 0, numa::Placement::kLocal);
  for (uint32_t i = 0; i < 1000; ++i) table.InsertSerial(Tuple{i, i + 7});
  for (uint32_t i = 0; i < 1000; ++i) {
    uint32_t payload = 0;
    EXPECT_EQ(table.Probe(i, [&](Tuple t) { payload = t.payload; }), 1u);
    EXPECT_EQ(payload, i + 7);
  }
}

TEST(ArrayTable, HolesReportMisses) {
  hash::ArrayTable table(System(), 1000, 0, numa::Placement::kLocal);
  table.InsertSerial(Tuple{10, 1});
  table.InsertSerial(Tuple{999, 2});
  EXPECT_EQ(table.Probe(10, [](Tuple) {}), 1u);
  EXPECT_EQ(table.Probe(11, [](Tuple) {}), 0u);
  EXPECT_EQ(table.Probe(0, [](Tuple) {}), 0u);
}

TEST(ArrayTable, KeyShiftIndexesPartitionedKeys) {
  // Partition with 4 radix bits: keys k where k % 16 == 3.
  hash::ArrayTable table(System(), 64, 4, numa::Placement::kLocal);
  for (uint32_t i = 0; i < 64; ++i) {
    table.InsertSerial(Tuple{i * 16 + 3, i});
  }
  for (uint32_t i = 0; i < 64; ++i) {
    uint32_t payload = 123456;
    EXPECT_EQ(
        table.Probe(i * 16 + 3, [&](Tuple t) { payload = t.payload; }), 1u);
    EXPECT_EQ(payload, i);
  }
}

TEST(ArrayTable, ConcurrentInsertBitmapSafe) {
  hash::ArrayTable table(System(), 100000, 0,
                         numa::Placement::kInterleavedPages);
  thread::RunTeam(8, [&](int tid) {
    const thread::Range range = thread::ChunkRange(100000, 8, tid);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      table.InsertConcurrent(
          Tuple{static_cast<uint32_t>(i), static_cast<uint32_t>(i * 2)});
    }
  });
  for (uint32_t i = 0; i < 100000; ++i) {
    uint32_t payload = 0;
    ASSERT_EQ(table.Probe(i, [&](Tuple t) { payload = t.payload; }), 1u);
    ASSERT_EQ(payload, i * 2);
  }
}

TEST(ArrayTable, ResetClearsValidity) {
  hash::ArrayTable table(System(), 1000, 0, numa::Placement::kLocal);
  table.InsertSerial(Tuple{5, 1});
  table.Reset(500, 0);
  EXPECT_EQ(table.Probe(5, [](Tuple) {}), 0u);
}

}  // namespace
}  // namespace mmjoin::hash
