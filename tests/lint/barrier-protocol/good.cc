// lint-path: src/join/fixture_barrier_ok.cc
// Fixture: the full check-before-barrier / test-after-barrier idiom, plus
// both accepted failpoint consequences (return and abort Set).

namespace mmjoin {

struct Barrier { void ArriveAndWait(); };
struct JoinAbort { void Set(int); bool IsSet(); };
struct WorkerContext { int thread_id; Barrier* barrier; };

bool PartitionAllocFailpoint();
bool BuildAllocFailpoint();

int GoodDriver() {
  if (PartitionAllocFailpoint()) return 1;
  return 0;
}

void GoodWorker(const WorkerContext& ctx, JoinAbort& abort) {
  Barrier& barrier = *ctx.barrier;
  if (ctx.thread_id == 0 && BuildAllocFailpoint()) {
    abort.Set(1);
  }
  barrier.ArriveAndWait();
  if (abort.IsSet()) return;
}

}  // namespace mmjoin
