// lint-path: src/join/fixture_failpoint.cc
// Fixture: a phase failpoint whose result is evaluated and then ignored.

namespace mmjoin {

bool BuildAllocFailpoint();

void BadBuild() {
  bool fired = BuildAllocFailpoint();
  int table = 0;
  table += fired ? 1 : 2;
  table *= 3;
}

}  // namespace mmjoin
