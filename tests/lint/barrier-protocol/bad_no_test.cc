// lint-path: src/join/fixture_barrier.cc
// Fixture: a worker publishes an abort at the barrier but nobody tests it
// afterwards -- the join runs past its own failure.

namespace mmjoin {

struct Barrier { void ArriveAndWait(); };
struct JoinAbort { void Set(int); bool IsSet(); };
struct WorkerContext { int thread_id; Barrier* barrier; };

void BadWorker(const WorkerContext& ctx, JoinAbort& abort) {
  Barrier& barrier = *ctx.barrier;
  if (ctx.thread_id == 0) {
    abort.Set(1);
  }
  barrier.ArriveAndWait();
  int phase_work = 0;
  phase_work += ctx.thread_id;
  phase_work *= 2;
  phase_work -= 1;
}

}  // namespace mmjoin
