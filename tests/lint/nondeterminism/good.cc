// lint-path: src/workload/fixture_rand_ok.cc
// Fixture: steady_clock and a seeded generator name; nothing to flag.
#include <chrono>

namespace mmjoin {

long Good() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace mmjoin
