// lint-path: src/workload/fixture_rand.cc
// Fixture: libc rand and system_clock in src/ must be flagged.
#include <chrono>
#include <cstdlib>

namespace mmjoin {

long Bad() {
  const int r = rand();  // BAD: unseeded libc rand
  const auto now = std::chrono::system_clock::now();  // BAD: wall clock
  return r + now.time_since_epoch().count();
}

}  // namespace mmjoin
