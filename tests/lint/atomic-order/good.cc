// lint-path: src/join/fixture_atomic_ok.cc
// Fixture: explicit orders everywhere; nothing to flag.
#include <atomic>

namespace mmjoin {

std::atomic<int> counter{0};

int Good() {
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load(std::memory_order_acquire);
}

}  // namespace mmjoin
