// lint-path: src/join/fixture_atomic.cc
// Fixture: atomic accesses without an explicit memory order must be flagged.
#include <atomic>

namespace mmjoin {

std::atomic<int> counter{0};

int Bad() {
  counter.fetch_add(1);       // BAD: no memory_order argument
  return counter.load();      // BAD: no memory_order argument
}

}  // namespace mmjoin
