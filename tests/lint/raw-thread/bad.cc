// lint-path: src/join/fixture_thread.cc
// Fixture: raw std::thread outside src/thread/ must be flagged.
#include <thread>

namespace mmjoin {

void Bad() {
  std::thread worker([] {});  // BAD: use thread::Executor
  worker.join();
}

}  // namespace mmjoin
