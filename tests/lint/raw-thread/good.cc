// lint-path: src/thread/fixture_thread_ok.cc
// Fixture: src/thread/ owns the raw threads; also hardware_concurrency is
// allowed anywhere.
#include <thread>

namespace mmjoin {

unsigned Good() {
  std::thread worker([] {});
  worker.join();
  return std::thread::hardware_concurrency();
}

}  // namespace mmjoin
