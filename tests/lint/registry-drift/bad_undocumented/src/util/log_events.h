// Fixture registry: structured log events.
#ifndef FIXTURE_LOG_EVENTS_H_
#define FIXTURE_LOG_EVENTS_H_

#define MMJOIN_LOG_EVENT_REGISTRY(X) \
  X("demo.event")

#endif
