// Fixture registry: counters and histograms.
#ifndef FIXTURE_METRIC_NAMES_H_
#define FIXTURE_METRIC_NAMES_H_

#define MMJOIN_COUNTER_REGISTRY(X) \
  X("demo.count")

#define MMJOIN_HISTOGRAM_REGISTRY(X) \
  X("demo.latency_ns")

#endif
