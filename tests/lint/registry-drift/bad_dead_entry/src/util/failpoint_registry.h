// Fixture registry: failpoints.
#ifndef FIXTURE_FAILPOINT_REGISTRY_H_
#define FIXTURE_FAILPOINT_REGISTRY_H_

#define MMJOIN_FAILPOINT_REGISTRY(X) \
  X("alloc.demo")                     \
  X("budget.demo")                    \
  X("alloc.unused")

#endif
