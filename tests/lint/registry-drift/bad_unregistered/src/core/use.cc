// Fixture use sites: exercises every registered name once.

namespace mmjoin {

void UseEverything() {
  MMJOIN_FAILPOINT("alloc.demo");
  MMJOIN_FAILPOINT("budget.demo");
  MMJOIN_FAILPOINT("test.adhoc");  // test.* needs no registration
  MMJOIN_FAILPOINT("alloc.rogue");
  metrics.AddCounter("demo.count", 1);
  metrics.GetHistogram("demo.latency_ns").Record(7);
  MMJOIN_LOG(kInfo, "demo.event").Field("n", 1);
}

}  // namespace mmjoin
