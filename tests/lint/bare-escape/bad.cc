// lint-path: src/thread/fixture_escape.cc
// Fixture: the analysis escape hatch without a justification comment.
#define MMJOIN_NO_THREAD_SAFETY_ANALYSIS

namespace mmjoin {

class BadEscape {
  void Drain() MMJOIN_NO_THREAD_SAFETY_ANALYSIS {}
};

}  // namespace mmjoin
