// lint-path: src/thread/fixture_escape_ok.cc
// Fixture: the escape carries its justification; nothing to flag.
#define MMJOIN_NO_THREAD_SAFETY_ANALYSIS

namespace mmjoin {

class GoodEscape {
  // Destructor runs single-threaded after every worker joined.
  void Drain() MMJOIN_NO_THREAD_SAFETY_ANALYSIS {}

  void Steal() MMJOIN_NO_THREAD_SAFETY_ANALYSIS {}  // lock held by caller
};

}  // namespace mmjoin
