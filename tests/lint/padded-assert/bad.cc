// lint-path: src/thread/fixture_padded.cc
// Fixture: alignas(kCacheLineSize) struct without a static_assert.
#include <cstdint>

namespace mmjoin {

inline constexpr int kCacheLineSize = 64;

struct alignas(kCacheLineSize) BadShard {  // BAD: no static_assert below
  uint64_t value;
};

}  // namespace mmjoin
