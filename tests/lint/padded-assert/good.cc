// lint-path: src/thread/fixture_padded_ok.cc
// Fixture: the padding claim is machine-checked; nothing to flag.
#include <cstdint>

namespace mmjoin {

inline constexpr int kCacheLineSize = 64;

struct alignas(kCacheLineSize) GoodShard {
  uint64_t value;
};
static_assert(alignof(GoodShard) == kCacheLineSize);
static_assert(sizeof(GoodShard) == kCacheLineSize);

}  // namespace mmjoin
