// lint-path: src/core/fixture_discard_ok.cc
// Fixture: justified discards and unused-parameter silencers are fine.

namespace mmjoin {

int Compute();

void Good(int tid) {
  (void)tid;

  // Best effort: a failure here only loses the cached value.
  (void)Compute();

  (void)Compute();  // result re-derived by the caller on the next pass
}

}  // namespace mmjoin
