// lint-path: src/core/fixture_discard.cc
// Fixture: a bare `(void)call()` discard with no justification anywhere.

namespace mmjoin {

int Compute();

void Bad() {
  int x = 0;
  x = x + 1;

  (void)Compute();
}

}  // namespace mmjoin
