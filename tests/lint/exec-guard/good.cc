// lint-path: src/exec/fixture_exec_ok.cc
// Fixture: ownership comments and guards make the discipline explicit.
#include <vector>

#define MMJOIN_GUARDED_BY(x)

namespace mmjoin {

struct Mutex {};

class GoodOperator {
 private:
  // per-thread: indexed by tid, each worker touches only its own slot.
  std::vector<int> rows_;
  Mutex mutex_;
  std::vector<int> shared_ MMJOIN_GUARDED_BY(mutex_);
};

}  // namespace mmjoin
