// lint-path: src/exec/fixture_exec.cc
// Fixture: a container member in src/exec/ with neither a guard nor an
// ownership comment.
#include <vector>

namespace mmjoin {

class BadOperator {
 private:
  std::vector<int> rows_;  // BAD: no guard, no ownership discipline stated
};

}  // namespace mmjoin
