// lint-path: src/mem/budget_fixture_ok.cc
// Fixture: atomic, const, and ownership-commented members are all fine.
#include <atomic>
#include <cstdint>

namespace mmjoin {

class GoodTracker {
 private:
  std::atomic<uint64_t> reserved_bytes_{0};
  const uint64_t limit_bytes_ = 0;
  // single-owner: written only by the planning thread before dispatch.
  uint64_t plan_bytes_ = 0;
};

}  // namespace mmjoin
