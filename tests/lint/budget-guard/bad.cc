// lint-path: src/mem/budget_fixture.cc
// Fixture: a plain mutable integral member in src/mem/budget* races.
#include <cstdint>

namespace mmjoin {

class BadTracker {
 private:
  uint64_t reserved_bytes_ = 0;  // BAD: shared counter, no protection stated
};

}  // namespace mmjoin
