// lint-path: src/thread/fixture_deque_ok.cc
// Fixture: the annotation names the protecting mutex; nothing to flag.
#include <deque>

#define MMJOIN_GUARDED_BY(x)

namespace mmjoin {

struct Mutex {};

class GoodQueue {
 private:
  Mutex mutex_;
  std::deque<int> tasks_ MMJOIN_GUARDED_BY(mutex_);
};

}  // namespace mmjoin
