// lint-path: src/thread/fixture_deque.cc
// Fixture: a bare std::deque member with no MMJOIN_GUARDED_BY.
#include <deque>

namespace mmjoin {

class BadQueue {
 private:
  std::deque<int> tasks_;  // BAD: which mutex protects this?
};

}  // namespace mmjoin
