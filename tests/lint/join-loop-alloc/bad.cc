// lint-path: src/join/fixture_loop_alloc.cc
// Fixture: heap allocation inside a join-phase loop must be flagged.
#include <cstdlib>

namespace mmjoin {

void Bad(int n) {
  for (int i = 0; i < n; ++i) {
    void* p = std::malloc(64);  // BAD: allocation inside the timed loop
    std::free(p);
  }
}

}  // namespace mmjoin
