// lint-path: src/join/fixture_loop_alloc_ok.cc
// Fixture: allocation hoisted out of the loop; nothing to flag.
#include <cstdlib>

namespace mmjoin {

void Good(int n) {
  void* p = std::malloc(64);
  for (int i = 0; i < n; ++i) {
    static_cast<char*>(p)[0] = static_cast<char>(i);
  }
  std::free(p);
}

}  // namespace mmjoin
