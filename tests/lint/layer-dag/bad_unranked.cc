// lint-path: src/join/fixture_unranked.cc
// Fixture: including a directory with no layer rank is itself a finding.
#include "mystery/widget.h"

namespace mmjoin {}
