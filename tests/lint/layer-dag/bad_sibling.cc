// lint-path: src/hash/fixture_sibling.cc
// Fixture: hash and sort share rank 5; the cross-include merges layers.
#include "sort/sort_defs.h"

namespace mmjoin {}
