// lint-path: src/join/fixture_layers_ok.cc
// Fixture: same-directory and strictly-downward includes only. The
// commented-out upward include below must NOT count as an edge:
// #include "exec/pipeline.h"
#include <vector>

#include "hash/table.h"
#include "join/internal.h"
#include "mem/aligned_alloc.h"
#include "util/status.h"

namespace mmjoin {}
