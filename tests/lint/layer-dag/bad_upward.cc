// lint-path: src/util/fixture_upward.cc
// Fixture: util (rank 0) including join (rank 6) is an upward edge.
#include "join/join_defs.h"
#include "util/status.h"

namespace mmjoin {}
