// lint-path: src/util/status.h
// Fixture: status.h without [[nodiscard]] on the classes disarms the
// whole ignored-return sweep.

namespace mmjoin {

class Status {};

template <typename T>
class StatusOr {};

}  // namespace mmjoin
