// lint-path: src/util/status.h
// Fixture: both classes keep the attribute; nothing to flag.

namespace mmjoin {

class [[nodiscard]] Status {};

template <typename T>
class [[nodiscard]] StatusOr {};

}  // namespace mmjoin
