// Tests for the core facade: Joiner, materialization sinks, and stray-key
// robustness of the public API.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/mmjoin.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "util/rng.h"

namespace mmjoin::core {
namespace {

TEST(Joiner, RunMatchesReference) {
  Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 10000, 1).value();
  auto probe =
      workload::MakeUniformProbe(joiner.system(), 50000, 10000, 2).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());
  const join::JoinResult result =
      joiner.Run(join::Algorithm::kCPRA, build, probe).value();
  EXPECT_EQ(result.matches, expected.matches);
  EXPECT_EQ(result.checksum, expected.checksum);
}

TEST(Joiner, RunByName) {
  Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 1000, 3).value();
  auto probe = workload::MakeUniformProbe(joiner.system(), 5000, 1000, 4).value();
  const auto result = joiner.RunByName("NOPA", build, probe);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value().matches, 5000u);
  EXPECT_FALSE(joiner.RunByName("bogus", build, probe).has_value());
}

TEST(Joiner, RunAutoPicksAndRuns) {
  Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 2000, 5).value();
  auto probe = workload::MakeUniformProbe(joiner.system(), 20000, 2000, 6).value();
  const Joiner::AutoResult result = joiner.RunAuto(build, probe).value();
  EXPECT_EQ(result.algorithm, join::Algorithm::kNOPA);  // small dense build
  EXPECT_EQ(result.result.matches, 20000u);
  EXPECT_FALSE(result.reason.empty());
}

TEST(Joiner, RunMaterializedReturnsAllPairs) {
  Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 500, 7).value();
  auto probe = workload::MakeUniformProbe(joiner.system(), 3000, 500, 8).value();
  auto pairs =
      joiner.RunMaterialized(join::Algorithm::kPROiS, build, probe).value();
  ASSERT_EQ(pairs.size(), 3000u);
  // Every pair joins on the key (dense build: payload == key).
  for (const join::MatchedPair& pair : pairs) {
    EXPECT_EQ(pair.build_payload, pair.key);
    EXPECT_LT(pair.probe_payload, 3000u);
  }
  // Probe payloads are row ids: each appears exactly once.
  std::set<uint32_t> probe_rows;
  for (const join::MatchedPair& pair : pairs) {
    probe_rows.insert(pair.probe_payload);
  }
  EXPECT_EQ(probe_rows.size(), 3000u);
}

TEST(JoinIndexSink, GatherEmptiesTheSink) {
  join::JoinIndexSink sink(2);
  sink.Consume(0, Tuple{1, 10}, Tuple{1, 20});
  sink.Consume(1, Tuple{2, 11}, Tuple{2, 21});
  EXPECT_EQ(sink.size(), 2u);
  auto pairs = sink.Gather();
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_EQ(sink.size(), 0u);
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  EXPECT_EQ(pairs[0], (join::MatchedPair{1, 10, 20}));
  EXPECT_EQ(pairs[1], (join::MatchedPair{2, 11, 21}));
}

// Regression: the constructor used to accept num_threads <= 0 unchecked,
// leaving Reserve() to divide by per_thread_.size() == 0 and the concurrent
// consume path to index into an empty vector.
TEST(JoinIndexSink, RejectsNonPositiveThreadCounts) {
  EXPECT_DEATH(join::JoinIndexSink sink(0), "check failed");
  EXPECT_DEATH(join::JoinIndexSink sink(-3), "check failed");
}

TEST(JoinIndexSink, ReserveDistributesAcrossThreads) {
  join::JoinIndexSink sink(4);
  sink.Reserve(1000);  // must not divide by zero or throw
  sink.Reserve(0);     // degenerate expectation is fine too
  EXPECT_EQ(sink.size(), 0u);
}

// The chunked fast path must agree with the tuple-at-a-time path.
TEST(JoinIndexSink, ConsumeChunkMatchesConsume) {
  join::MatchChunk chunk;
  for (uint32_t i = 0; i < 100; ++i) {
    chunk.Add(Tuple{i, i + 1000}, Tuple{i, i + 2000});
  }

  join::JoinIndexSink chunked(2);
  chunked.ConsumeChunk(1, chunk);
  join::JoinIndexSink scalar(2);
  for (uint32_t i = 0; i < chunk.size; ++i) {
    scalar.Consume(1, Tuple{chunk.key[i], chunk.build_payload[i]},
                   Tuple{chunk.key[i], chunk.probe_payload[i]});
  }
  EXPECT_EQ(chunked.Gather(), scalar.Gather());
}

TEST(CallbackSink, StreamsMatches) {
  std::vector<uint64_t> per_thread(4, 0);
  auto sink = join::MakeCallbackSink(
      [&](int tid, Tuple build, Tuple probe) { ++per_thread[tid]; });

  Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 1000, 9).value();
  auto probe = workload::MakeUniformProbe(joiner.system(), 8000, 1000, 10).value();
  join::JoinConfig config;
  config.num_threads = 4;
  config.sink = &sink;
  join::RunJoin(join::Algorithm::kCPRL, joiner.system(), config, build,
                probe).value();
  uint64_t total = 0;
  for (uint64_t c : per_thread) total += c;
  EXPECT_EQ(total, 8000u);
}

// Probe keys outside the build key domain must miss safely, for every
// algorithm (the array joins bounds-check, hash probes terminate, the
// sort-merge compares full keys).
TEST(StrayKeys, AllAlgorithmsMissSafely) {
  Joiner joiner;
  auto build = workload::MakeDenseBuild(joiner.system(), 4096, 11).value();
  workload::Relation probe(joiner.system(), 10000);
  Rng rng(12);
  for (uint64_t i = 0; i < probe.size(); ++i) {
    // Half in-domain, half far outside (up to 2^31).
    const uint32_t key =
        (i % 2 == 0) ? static_cast<uint32_t>(rng.NextBelow(4096))
                     : static_cast<uint32_t>(4096 + rng.NextBelow(1u << 31));
    probe.data()[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  probe.set_key_domain(build.key_domain());

  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());
  EXPECT_EQ(expected.matches, 5000u);
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const join::JoinResult result = joiner.Run(algorithm, build, probe).value();
    EXPECT_EQ(result.matches, expected.matches) << join::NameOf(algorithm);
    EXPECT_EQ(result.checksum, expected.checksum)
        << join::NameOf(algorithm);
  }
}

// Acceptance: one Joiner lifetime covering all thirteen algorithms plus a
// TPC-H Q19 execution reuses the same worker pool throughout -- the executor
// spawned exactly num_threads threads once, while dispatches kept counting.
TEST(Joiner, PoolReusedAcrossJoinsAndQ19) {
  JoinerOptions options;
  options.num_threads = 4;
  Joiner joiner(options);

  auto build = workload::MakeDenseBuild(joiner.system(), 8192, 13).value();
  auto probe = workload::MakeUniformProbe(joiner.system(), 40000, 8192, 14).value();
  const join::JoinResult expected =
      join::ReferenceJoin(build.cspan(), probe.cspan());

  // >= 10 joins: all thirteen algorithms, each checked against the
  // reference (matches, checksum).
  for (const join::Algorithm algorithm : join::AllAlgorithms()) {
    const join::JoinResult result = joiner.Run(algorithm, build, probe).value();
    EXPECT_EQ(result.matches, expected.matches) << join::NameOf(algorithm);
    EXPECT_EQ(result.checksum, expected.checksum)
        << join::NameOf(algorithm);
  }

  // One full TPC-H Q19 on the same pool.
  tpch::GeneratorOptions tpch_options;
  tpch_options.scale_factor = 0.01;
  tpch_options.seed = 15;
  tpch::LineitemTable lineitem =
      tpch::GenerateLineitem(joiner.system(), tpch_options);
  tpch::PartTable part = tpch::GeneratePart(joiner.system(), tpch_options);
  const double reference = tpch::Q19Reference(lineitem, part);
  const tpch::Q19Result q19 = tpch::RunQ19(
      joiner.system(), lineitem, part, join::Algorithm::kCPRL,
      joiner.num_threads(), tpch::Q19Strategy::kPipelined, joiner.executor());
  EXPECT_NEAR(q19.revenue, reference, std::abs(reference) * 1e-9 + 1e-6);

  const thread::ExecutorStats stats = joiner.executor()->stats();
  EXPECT_EQ(stats.threads_spawned,
            static_cast<uint64_t>(joiner.num_threads()));
  EXPECT_GE(stats.dispatches, 10u);
  EXPECT_EQ(stats.max_team_size,
            static_cast<uint64_t>(joiner.num_threads()));
}

}  // namespace
}  // namespace mmjoin::core
