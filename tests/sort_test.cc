// Tests for the sort-merge substrate: SIMD bitonic merge kernels, packed
// merge sort, and the multiway (loser tree) merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cstdint>
#include <vector>

#include "sort/bitonic.h"
#include "sort/multiway_merge.h"
#include "util/rng.h"
#include "util/types.h"

namespace mmjoin::sort {
namespace {

std::vector<uint64_t> RandomPacked(std::size_t n, uint64_t seed,
                                   bool full_range = false) {
  Rng rng(seed);
  std::vector<uint64_t> data(n);
  for (auto& v : data) {
    // Keys below kEmptyKey; optionally exercise the full 32-bit key range
    // (sign-bit handling in the SIMD kernels).
    const uint32_t key =
        full_range ? static_cast<uint32_t>(rng.NextBelow(0xFFFFFFFFull))
                   : static_cast<uint32_t>(rng.NextBelow(1u << 20));
    v = PackTuple(Tuple{key, static_cast<uint32_t>(rng.Next())});
  }
  return data;
}

TEST(MergeSignedRuns, AgainstStdMerge) {
  Rng rng(1);
  for (const auto [na, nb] : std::vector<std::pair<int, int>>{
           {0, 0}, {1, 0}, {0, 1}, {1, 1}, {4, 4}, {5, 3},
           {16, 16}, {100, 7}, {1000, 1000}, {1023, 4096}}) {
    std::vector<int64_t> a(na), b(nb);
    for (auto& v : a) v = static_cast<int64_t>(rng.Next());
    for (auto& v : b) v = static_cast<int64_t>(rng.Next());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    std::vector<int64_t> expected(na + nb);
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());

    std::vector<int64_t> actual(na + nb);
    MergeSignedRuns(a.data(), a.size(), b.data(), b.size(), actual.data());
    ASSERT_EQ(actual, expected) << "na=" << na << " nb=" << nb;
  }
}

TEST(MergeSignedRuns, NegativeValues) {
  std::vector<int64_t> a = {-100, -50, 0, 50};
  std::vector<int64_t> b = {-75, -25, 25, 75, 100};
  std::vector<int64_t> out(9);
  MergeSignedRuns(a.data(), a.size(), b.data(), b.size(), out.data());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(MergeSignedRuns, DuplicateHeavy) {
  std::vector<int64_t> a(64, 7), b(64, 7);
  a[63] = 8;
  std::vector<int64_t> out(128);
  MergeSignedRuns(a.data(), a.size(), b.data(), b.size(), out.data());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(std::count(out.begin(), out.end(), 7), 127);
}

class MergeSortPackedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeSortPackedTest, SortsLikeStdSort) {
  const std::size_t n = GetParam();
  std::vector<uint64_t> data = RandomPacked(n, 17 + n);
  std::vector<uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());

  std::vector<uint64_t> scratch(n);
  MergeSortPacked(data.data(), n, scratch.data());
  EXPECT_EQ(data, expected);
  EXPECT_TRUE(IsSortedPacked(data.data(), n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSortPackedTest,
                         ::testing::Values(0, 1, 2, 15, 16, 63, 64, 65, 127,
                                           1000, 4096, 65537));

TEST(MergeSortPacked, FullKeyRangeUnsignedOrder) {
  // Keys with the top bit set must sort above keys without it (unsigned
  // semantics despite the signed SIMD compares).
  std::vector<uint64_t> data = RandomPacked(4096, 23, /*full_range=*/true);
  std::vector<uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<uint64_t> scratch(data.size());
  MergeSortPacked(data.data(), data.size(), scratch.data());
  EXPECT_EQ(data, expected);
}

TEST(MergeSortPacked, AlreadySortedAndReversed) {
  std::vector<uint64_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 3;
  std::vector<uint64_t> scratch(data.size());
  MergeSortPacked(data.data(), data.size(), scratch.data());
  EXPECT_TRUE(IsSortedPacked(data.data(), data.size()));

  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (data.size() - i) * 3;
  }
  MergeSortPacked(data.data(), data.size(), scratch.data());
  EXPECT_TRUE(IsSortedPacked(data.data(), data.size()));
}

TEST(MultiwayMerge, SingleRunIsCopy) {
  std::vector<uint64_t> run = {1, 2, 3, 4, 5};
  std::vector<uint64_t> out(5);
  const SortedRun runs[] = {{run.data(), run.size()}};
  MultiwayMerge(std::span<const SortedRun>(runs, 1), out.data());
  EXPECT_EQ(out, run);
}

TEST(MultiwayMerge, TwoRunsUseSimdKernel) {
  std::vector<uint64_t> a = RandomPacked(1000, 31);
  std::vector<uint64_t> b = RandomPacked(777, 32);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> expected;
  expected.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expected));
  std::vector<uint64_t> out(a.size() + b.size());
  const SortedRun runs[] = {{a.data(), a.size()}, {b.data(), b.size()}};
  MultiwayMerge(std::span<const SortedRun>(runs, 2), out.data());
  EXPECT_EQ(out, expected);
}

class MultiwayMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiwayMergeTest, ManyRunsAgainstStdSort) {
  const int k = GetParam();
  Rng rng(100 + k);
  std::vector<std::vector<uint64_t>> run_storage(k);
  std::vector<SortedRun> runs;
  std::vector<uint64_t> expected;
  for (int r = 0; r < k; ++r) {
    run_storage[r] = RandomPacked(1 + rng.NextBelow(2000), 500 + r);
    std::sort(run_storage[r].begin(), run_storage[r].end());
    expected.insert(expected.end(), run_storage[r].begin(),
                    run_storage[r].end());
    runs.push_back(SortedRun{run_storage[r].data(), run_storage[r].size()});
  }
  std::sort(expected.begin(), expected.end());

  std::vector<uint64_t> out(expected.size());
  MultiwayMerge(runs, out.data());
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Ks, MultiwayMergeTest,
                         ::testing::Values(3, 4, 5, 8, 16, 33));

TEST(MultiwayMerge, EmptyRunsMixedIn) {
  std::vector<uint64_t> a = {1, 5, 9};
  std::vector<uint64_t> b;
  std::vector<uint64_t> c = {2, 3};
  const SortedRun runs[] = {
      {a.data(), a.size()}, {b.data(), 0}, {c.data(), c.size()}};
  std::vector<uint64_t> out(5);
  MultiwayMerge(std::span<const SortedRun>(runs, 3), out.data());
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2, 3, 5, 9}));
}

TEST(SortNetwork16, SortsAllPermutationStressCases) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t data[16];
    for (auto& v : data) v = static_cast<int64_t>(rng.Next());
    int64_t expected[16];
    std::copy(data, data + 16, expected);
    std::sort(expected, expected + 16);
    SortNetwork16Signed(data);
    ASSERT_TRUE(std::equal(data, data + 16, expected)) << "trial " << trial;
  }
}

TEST(SortNetwork16, HandlesDuplicatesAndExtremes) {
  int64_t data[16] = {0, 0, -1, -1, INT64_MAX, INT64_MIN, 5, 5,
                      5, 0, INT64_MAX, INT64_MIN, 1, -1, 0, 5};
  int64_t expected[16];
  std::copy(data, data + 16, expected);
  std::sort(expected, expected + 16);
  SortNetwork16Signed(data);
  EXPECT_TRUE(std::equal(data, data + 16, expected));
}

TEST(SortNetwork16, AllZeroOneMasks) {
  // Exhaustive 0/1 inputs: a comparator network sorts all inputs iff it
  // sorts all 2^16 zero-one sequences (the 0-1 principle).
  for (uint32_t mask = 0; mask < (1u << 16); ++mask) {
    int64_t data[16];
    int ones = 0;
    for (int i = 0; i < 16; ++i) {
      data[i] = (mask >> i) & 1;
      ones += static_cast<int>(data[i]);
    }
    SortNetwork16Signed(data);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(data[i], i >= 16 - ones ? 1 : 0) << "mask=" << mask;
    }
  }
}

TEST(Simd, KernelAvailabilityMatchesBuild) {
#if defined(__AVX2__)
  EXPECT_TRUE(HasSimdMerge());
#else
  EXPECT_FALSE(HasSimdMerge());
#endif
}

}  // namespace
}  // namespace mmjoin::sort
