// Tests for the workload generators: determinism, key-set properties, Zipf
// distribution shape, sparse (holes) domains.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "numa/system.h"
#include "workload/generator.h"
#include "workload/zipf.h"

namespace mmjoin::workload {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

TEST(DenseBuild, KeysAreAPermutation) {
  const uint64_t n = 100000;
  Relation rel = MakeDenseBuild(System(), n, 1).value();
  ASSERT_EQ(rel.size(), n);
  EXPECT_EQ(rel.key_domain(), n);

  std::vector<bool> seen(n, false);
  for (uint64_t i = 0; i < n; ++i) {
    const Tuple t = rel.data()[i];
    ASSERT_LT(t.key, n);
    ASSERT_FALSE(seen[t.key]);
    seen[t.key] = true;
    ASSERT_EQ(t.payload, t.key);
  }
}

TEST(DenseBuild, ShuffledNotSorted) {
  Relation rel = MakeDenseBuild(System(), 10000, 2).value();
  bool sorted = true;
  for (uint64_t i = 1; i < rel.size(); ++i) {
    if (rel.data()[i - 1].key > rel.data()[i].key) {
      sorted = false;
      break;
    }
  }
  EXPECT_FALSE(sorted);
}

TEST(DenseBuild, DeterministicInSeed) {
  Relation a = MakeDenseBuild(System(), 1000, 7).value();
  Relation b = MakeDenseBuild(System(), 1000, 7).value();
  Relation c = MakeDenseBuild(System(), 1000, 8).value();
  EXPECT_TRUE(std::equal(a.data(), a.data() + 1000, b.data()));
  EXPECT_FALSE(std::equal(a.data(), a.data() + 1000, c.data()));
}

TEST(UniformProbe, KeysInDomainAndPayloadIsRowId) {
  Relation probe = MakeUniformProbe(System(), 50000, 1000, 3).value();
  for (uint64_t i = 0; i < probe.size(); ++i) {
    ASSERT_LT(probe.data()[i].key, 1000u);
    ASSERT_EQ(probe.data()[i].payload, i);
  }
}

TEST(UniformProbe, CoversDomainRoughlyUniformly) {
  const uint64_t domain = 100;
  Relation probe = MakeUniformProbe(System(), 100000, domain, 4).value();
  std::vector<uint64_t> counts(domain, 0);
  for (uint64_t i = 0; i < probe.size(); ++i) ++counts[probe.data()[i].key];
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  // Expected 1000 per key; allow generous slack.
  EXPECT_GT(*min_it, 800u);
  EXPECT_LT(*max_it, 1200u);
}

TEST(ZipfGenerator, ThetaZeroIsUniform) {
  ZipfGenerator gen(1000, 0.0, 5);
  std::vector<uint64_t> counts(1001, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t rank = gen.Next();
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 1000u);
    ++counts[rank];
  }
  EXPECT_GT(*std::min_element(counts.begin() + 1, counts.end()), 40u);
}

TEST(ZipfGenerator, HighThetaConcentratesMass) {
  ZipfGenerator gen(1u << 20, 0.99, 6);
  uint64_t top10 = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (gen.Next() <= 10) ++top10;
  }
  // At theta=0.99 over 2^20 values, the 10 hottest ranks carry a large
  // fraction of the mass (analytically ~19%).
  EXPECT_GT(top10, draws / 10);
}

TEST(ZipfGenerator, RankOneIsMostFrequent) {
  ZipfGenerator gen(10000, 0.9, 7);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 50000; ++i) ++counts[gen.Next()];
  uint64_t max_rank = 0, max_count = 0;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 1u);
}

TEST(ZipfProbe, KeysInDomainAndHotKeysRemapped) {
  const uint64_t build_n = 1 << 16;
  Relation probe = MakeZipfProbe(System(), 200000, build_n, 0.99, 8).value();
  std::vector<uint64_t> counts(build_n, 0);
  for (uint64_t i = 0; i < probe.size(); ++i) {
    ASSERT_LT(probe.data()[i].key, build_n);
    ++counts[probe.data()[i].key];
  }
  // The hottest keys must NOT all be the smallest keys: the paper remaps
  // the 10 hottest ranks into the full domain.
  std::vector<std::pair<uint64_t, uint64_t>> by_count;
  for (uint64_t k = 0; k < build_n; ++k) by_count.push_back({counts[k], k});
  std::sort(by_count.rbegin(), by_count.rend());
  uint64_t hot_outside_low = 0;
  for (int i = 0; i < 10; ++i) {
    if (by_count[i].second >= 16) ++hot_outside_low;
  }
  EXPECT_GE(hot_outside_low, 5u);
}

TEST(SparseBuild, StratifiedUniqueKeys) {
  const uint64_t n = 10000, k = 8;
  Relation rel = MakeSparseBuild(System(), n, k, 9).value();
  EXPECT_EQ(rel.key_domain(), n * k);
  std::set<uint32_t> keys;
  for (uint64_t i = 0; i < n; ++i) {
    keys.insert(rel.data()[i].key);
    ASSERT_LT(rel.data()[i].key, n * k);
  }
  EXPECT_EQ(keys.size(), n);  // unique
}

TEST(SparseBuild, KEqualsOneIsDense) {
  Relation rel = MakeSparseBuild(System(), 1000, 1, 10).value();
  std::set<uint32_t> keys;
  for (uint64_t i = 0; i < 1000; ++i) keys.insert(rel.data()[i].key);
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_EQ(*keys.rbegin(), 999u);
}

TEST(ProbeFromBuild, EveryProbeKeyExistsInBuild) {
  Relation build = MakeSparseBuild(System(), 5000, 13, 11).value();
  Relation probe = MakeProbeFromBuild(System(), 50000, build, 12).value();
  std::set<uint32_t> build_keys;
  for (uint64_t i = 0; i < build.size(); ++i) {
    build_keys.insert(build.data()[i].key);
  }
  for (uint64_t i = 0; i < probe.size(); ++i) {
    ASSERT_TRUE(build_keys.count(probe.data()[i].key));
  }
  EXPECT_EQ(probe.key_domain(), build.key_domain());
}

// ---------------------------------------------------------------------------
// Parameter validation: nonsensical requests come back as InvalidArgument
// instead of generating garbage (or aborting).
// ---------------------------------------------------------------------------

TEST(Validation, ZeroCardinalityRejectedEverywhere) {
  EXPECT_EQ(MakeDenseBuild(System(), 0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeUniformProbe(System(), 0, 100, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeZipfProbe(System(), 0, 100, 0.5, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeSparseBuild(System(), 0, 4, 1).status().code(),
            StatusCode::kInvalidArgument);
  Relation build = MakeDenseBuild(System(), 100, 1).value();
  EXPECT_EQ(MakeProbeFromBuild(System(), 0, build, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Validation, ProbeAgainstEmptyDomainRejected) {
  EXPECT_FALSE(MakeUniformProbe(System(), 100, 0, 1).ok());
  EXPECT_FALSE(MakeZipfProbe(System(), 100, 0, 0.5, 1).ok());
  Relation empty(System(), 0);
  EXPECT_FALSE(MakeProbeFromBuild(System(), 100, empty, 1).ok());
}

TEST(Validation, ZipfThetaOutsideGraysRangeRejected) {
  EXPECT_TRUE(ZipfGenerator::Validate(100, 0.0).ok());
  EXPECT_TRUE(ZipfGenerator::Validate(100, 0.99).ok());
  // theta >= 1 is in range since the theta = 1 pole got an epsilon window
  // (the paper's Fig 15 skew sweep needs up to 1.5).
  EXPECT_TRUE(ZipfGenerator::Validate(100, 1.0).ok());
  EXPECT_TRUE(ZipfGenerator::Validate(100, 1.25).ok());
  EXPECT_TRUE(ZipfGenerator::Validate(100, kMaxZipfTheta).ok());
  EXPECT_FALSE(ZipfGenerator::Validate(100, -0.1).ok());
  EXPECT_FALSE(ZipfGenerator::Validate(100, kMaxZipfTheta + 0.1).ok());
  EXPECT_FALSE(
      ZipfGenerator::Validate(100, std::nan("")).ok());
  EXPECT_FALSE(ZipfGenerator::Validate(0, 0.5).ok());
  EXPECT_TRUE(MakeZipfProbe(System(), 100, 50, 1.0, 1).ok());
  EXPECT_FALSE(MakeZipfProbe(System(), 100, 50, 9.0, 1).ok());
}

TEST(ZipfZeta, ContinuousAcrossThetaOne) {
  // The harmonic special case must be an epsilon window, not an exact float
  // compare: values straddling theta = 1 from either side agree to ~1e-6
  // relative, on both the exact-sum path (small n) and the Euler-Maclaurin
  // path (large n).
  for (const uint64_t n : {uint64_t{50000}, uint64_t{1} << 20}) {
    const double at_one = ZipfZeta(n, 1.0);
    for (const double delta : {1e-12, 1e-9, 3e-8, 1e-7}) {
      const double below = ZipfZeta(n, 1.0 - delta);
      const double above = ZipfZeta(n, 1.0 + delta);
      EXPECT_NEAR(below / at_one, 1.0, 1e-5)
          << "n=" << n << " theta=1-" << delta;
      EXPECT_NEAR(above / at_one, 1.0, 1e-5)
          << "n=" << n << " theta=1+" << delta;
      EXPECT_GE(below, above) << "zeta must decrease in theta";
    }
  }
}

TEST(ZipfGenerator, ThetaJustAboveOneMatchesHarmonicPath) {
  // theta = 1 + 1e-12 historically took the general Zeta branch (exact
  // equality test) and lost precision against the harmonic path; with the
  // window both sides produce near-identical generators.
  const uint64_t n = 1u << 20;
  ZipfGenerator at_one(n, 1.0, 42);
  ZipfGenerator just_above(n, 1.0 + 1e-12, 42);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(at_one.Next(), just_above.Next()) << "draw " << i;
  }
}

TEST(ZipfGenerator, ThetaAboveOneConcentratesMass) {
  // Sanity for the Fig 15 operating point: at theta = 1.25 over 2^20
  // values, the 10 hottest ranks carry about half the mass
  // (zeta(1.25, 10) / zeta(1.25, 2^20) ~ 52%).
  ZipfGenerator gen(1u << 20, 1.25, 11);
  uint64_t top10 = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t rank = gen.Next();
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, uint64_t{1} << 20);
    if (rank <= 10) ++top10;
  }
  const double share = static_cast<double>(top10) / draws;
  EXPECT_GT(share, 0.45);
  EXPECT_LT(share, 0.60);
}

TEST(Validation, SparseDomainOverflowRejected) {
  // n * k would exceed the 32-bit key space.
  EXPECT_EQ(MakeSparseBuild(System(), 1u << 20, 1u << 20, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeSparseBuild(System(), 100, 0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(MakeSparseBuild(System(), 1000, 8, 1).ok());
}

}  // namespace
}  // namespace mmjoin::workload
