// Unit tests for the software NUMA layer: topology, placements, address ->
// node resolution, and traffic accounting.

#include <gtest/gtest.h>

#include <vector>

#include "numa/system.h"
#include "numa/topology.h"
#include "util/types.h"

namespace mmjoin::numa {
namespace {

TEST(Topology, ThreadPlacementFewThreads) {
  Topology topo(4);
  // threads <= nodes: one thread per node.
  EXPECT_EQ(topo.NodeOfThread(0, 4), 0);
  EXPECT_EQ(topo.NodeOfThread(1, 4), 1);
  EXPECT_EQ(topo.NodeOfThread(3, 4), 3);
}

TEST(Topology, ThreadPlacementBlockAssignment) {
  Topology topo(4);
  // 8 threads on 4 nodes: contiguous blocks of 2.
  EXPECT_EQ(topo.NodeOfThread(0, 8), 0);
  EXPECT_EQ(topo.NodeOfThread(1, 8), 0);
  EXPECT_EQ(topo.NodeOfThread(2, 8), 1);
  EXPECT_EQ(topo.NodeOfThread(7, 8), 3);
}

TEST(Topology, ThreadPlacementAlignsWithChunkedMemory) {
  // The core CPRL invariant: thread t's 1/T input chunk must live on thread
  // t's node for any thread count that is a multiple of the node count.
  Topology topo(4);
  for (const int threads : {4, 8, 12, 16, 60}) {
    const std::size_t total_bytes = 4096 * threads;
    for (int t = 0; t < threads; ++t) {
      const std::size_t chunk_mid =
          (total_bytes / threads) * t + total_bytes / threads / 2;
      EXPECT_EQ(topo.NodeOfThread(t, threads),
                topo.NodeOfOffset(Placement::kChunkedRoundRobin, 0, chunk_mid,
                                  total_bytes))
          << "threads=" << threads << " t=" << t;
    }
  }
}

TEST(Topology, InterleavedPagesRoundRobin) {
  Topology topo(4);
  EXPECT_EQ(topo.NodeOfOffset(Placement::kInterleavedPages, 0, 0, 1 << 20),
            0);
  EXPECT_EQ(topo.NodeOfOffset(Placement::kInterleavedPages, 0, 4096, 1 << 20),
            1);
  EXPECT_EQ(
      topo.NodeOfOffset(Placement::kInterleavedPages, 0, 4 * 4096, 1 << 20),
      0);
}

TEST(Topology, LocalPlacement) {
  Topology topo(4);
  EXPECT_EQ(topo.NodeOfOffset(Placement::kLocal, 2, 123456, 1 << 20), 2);
}

TEST(Topology, ActiveNodesListsDistinctHomeNodesAscending) {
  Topology topo(4);
  EXPECT_EQ(topo.ActiveNodes(1), (std::vector<int>{0}));
  EXPECT_EQ(topo.ActiveNodes(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.ActiveNodes(4), (std::vector<int>{0, 1, 2, 3}));
  // More threads than nodes: every node hosts a block, still one entry each.
  EXPECT_EQ(topo.ActiveNodes(8), (std::vector<int>{0, 1, 2, 3}));
  // 3 threads on 4 nodes: block placement leaves one node idle.
  const std::vector<int> three = topo.ActiveNodes(3);
  EXPECT_EQ(three.size(), 3u);
  for (std::size_t i = 1; i < three.size(); ++i) {
    EXPECT_LT(three[i - 1], three[i]);
  }
}

TEST(Topology, NodeDistanceIsSymmetricRingDistance) {
  Topology topo(4);
  EXPECT_EQ(topo.NodeDistance(0, 0), 0);
  EXPECT_EQ(topo.NodeDistance(0, 1), 1);
  EXPECT_EQ(topo.NodeDistance(0, 2), 2);
  EXPECT_EQ(topo.NodeDistance(0, 3), 1);  // wraps around the ring
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(topo.NodeDistance(a, b), topo.NodeDistance(b, a));
    }
  }
}

TEST(Topology, NodesByDistanceOrdersNeighboursFirst) {
  Topology topo(4);
  // From node 0: both ring neighbours (1 and 3) before the opposite node
  // (2); equal distances tie toward the lower index.
  EXPECT_EQ(topo.NodesByDistance(0), (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(topo.NodesByDistance(1), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(topo.NodesByDistance(2), (std::vector<int>{1, 3, 0}));
  // Two nodes: only the one remote candidate.
  EXPECT_EQ(Topology(2).NodesByDistance(0), (std::vector<int>{1}));
  // One node: nobody to steal from.
  EXPECT_TRUE(Topology(1).NodesByDistance(0).empty());
}

TEST(NumaSystem, TaskStealMatrixCountsThiefVictimPairs) {
  NumaSystem system(4);
  EXPECT_EQ(system.TotalTaskSteals(), 0u);
  system.CountTaskSteal(/*thief_node=*/0, /*victim_node=*/2);
  system.CountTaskSteal(0, 2);
  system.CountTaskSteal(3, 1);
  EXPECT_EQ(system.TaskSteals(0, 2), 2u);
  EXPECT_EQ(system.TaskSteals(3, 1), 1u);
  EXPECT_EQ(system.TaskSteals(2, 0), 0u);  // direction matters
  EXPECT_EQ(system.TotalTaskSteals(), 3u);
}

TEST(NumaSystem, NodeOfResolvesPlacements) {
  NumaSystem system(4);
  void* local = system.Allocate(1 << 20, Placement::kLocal, 2);
  EXPECT_EQ(system.NodeOf(local), 2);

  void* chunked = system.Allocate(1 << 20, Placement::kChunkedRoundRobin, 0);
  auto* base = static_cast<char*>(chunked);
  EXPECT_EQ(system.NodeOf(base), 0);
  EXPECT_EQ(system.NodeOf(base + (1 << 20) - 1), 3);
  EXPECT_EQ(system.NodeOf(base + (1 << 18)), 1);

  int unknown = 0;
  EXPECT_EQ(system.NodeOf(&unknown), -1);

  system.Free(local);
  system.Free(chunked);
  EXPECT_EQ(system.NodeOf(base), -1);
}

TEST(NumaSystem, AccountingDisabledByDefault) {
  NumaSystem system(4);
  EXPECT_FALSE(system.accounting_enabled());
  void* p = system.Allocate(4096, Placement::kLocal, 0);
  system.CountRead(0, p, 4096);  // must be a no-op, not a crash
  system.Free(p);
}

TEST(NumaSystem, CountsLocalAndRemote) {
  NumaSystem system(4);
  system.EnableAccounting();
  void* p = system.Allocate(1 << 20, Placement::kLocal, 1);

  system.CountRead(1, p, 1000);  // local read
  system.CountWrite(0, p, 500);  // remote write from node 0 to node 1

  AccessCounters* counters = system.counters();
  EXPECT_EQ(counters->ReadBytes(1, 1), 1000u);
  EXPECT_EQ(counters->WriteBytes(0, 1), 500u);
  EXPECT_EQ(counters->TotalLocalReadBytes(), 1000u);
  EXPECT_EQ(counters->TotalRemoteWriteBytes(), 500u);
  EXPECT_EQ(counters->TotalLocalWriteBytes(), 0u);
  system.Free(p);
}

TEST(NumaSystem, ChunkedRangeSplitsAcrossNodes) {
  NumaSystem system(4);
  system.EnableAccounting();
  const std::size_t bytes = 1 << 20;
  void* p = system.Allocate(bytes, Placement::kChunkedRoundRobin, 0);

  // A read covering the whole region from node 0: 1/4 local, 3/4 remote.
  system.CountRead(0, p, bytes);
  AccessCounters* counters = system.counters();
  EXPECT_EQ(counters->ReadBytes(0, 0), bytes / 4);
  EXPECT_EQ(counters->ReadBytes(0, 1), bytes / 4);
  EXPECT_EQ(counters->ReadBytes(0, 3), bytes / 4);
  EXPECT_EQ(counters->TotalRemoteReadBytes(), 3 * bytes / 4);
  system.Free(p);
}

TEST(NumaSystem, InterleavedRangeSpreadsEvenly) {
  NumaSystem system(4);
  system.EnableAccounting();
  void* p = system.Allocate(1 << 20, Placement::kInterleavedPages, 0);
  system.CountWrite(2, p, 4000);
  AccessCounters* counters = system.counters();
  EXPECT_EQ(counters->WriteBytes(2, 0), 1000u);
  EXPECT_EQ(counters->WriteBytes(2, 3), 1000u);
  system.Free(p);
}

TEST(NumaSystem, ModeledCostPenalizesRemote) {
  NumaSystem system(2);
  system.EnableAccounting();
  void* p = system.Allocate(1 << 20, Placement::kLocal, 0);
  system.CountRead(0, p, 64 * 1000);  // 1000 local lines
  const double local_only = system.counters()->ModeledCostMillis();
  system.CountRead(1, p, 64 * 1000);  // 1000 remote lines
  const double with_remote = system.counters()->ModeledCostMillis();
  EXPECT_GT(with_remote, 2.0 * local_only);
  system.Free(p);
}

TEST(NumaBuffer, TypedAccess) {
  NumaSystem system(4);
  NumaBuffer<Tuple> buffer(&system, 1000, Placement::kInterleavedPages);
  ASSERT_EQ(buffer.size(), 1000u);
  buffer[0] = Tuple{1, 2};
  buffer[999] = Tuple{3, 4};
  EXPECT_EQ(buffer[0], (Tuple{1, 2}));
  EXPECT_EQ(buffer[999], (Tuple{3, 4}));
}

TEST(AccessCounters, TimelineRecordsTraffic) {
  Topology topo(2);
  AccessCounters counters(topo, /*timeline_bucket_nanos=*/1);
  counters.StartTimeline(0);
  counters.CountWrite(0, 1, 128, /*now_nanos=*/0);
  uint64_t total = 0;
  for (int b = 0; b < AccessCounters::kTimelineBuckets; ++b) {
    total += counters.TimelineBytes(1, b);
  }
  EXPECT_EQ(total, 128u);
}

}  // namespace
}  // namespace mmjoin::numa
