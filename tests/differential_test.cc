// Randomized differential testing: many random workload configurations
// (sizes, domains, skew, duplicates, thread counts, radix bits) swept
// through all thirteen algorithms, each compared exactly against the
// reference join. Seeds are fixed, so failures are reproducible; the trial
// parameters are printed on mismatch.

#include <gtest/gtest.h>

#include <string>

#include "join/join_algorithm.h"
#include "join/reference.h"
#include "numa/system.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mmjoin::join {
namespace {

struct TrialConfig {
  uint64_t build_size;
  uint64_t probe_size;
  uint64_t domain_factor;  // 1 = dense
  double zipf;
  bool duplicates;  // duplicate build keys (non-array algorithms only)
  int threads;
  uint32_t radix_bits;  // 0 = auto
  uint32_t skew_factor;

  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "build=%llu probe=%llu domain_factor=%llu zipf=%.2f "
                  "dups=%d threads=%d bits=%u skew_factor=%u",
                  static_cast<unsigned long long>(build_size),
                  static_cast<unsigned long long>(probe_size),
                  static_cast<unsigned long long>(domain_factor), zipf,
                  duplicates ? 1 : 0, threads, radix_bits, skew_factor);
    return buf;
  }
};

TrialConfig RandomTrial(Rng* rng) {
  TrialConfig trial;
  trial.build_size = 1 + rng->NextBelow(30000);
  trial.probe_size = 1 + rng->NextBelow(120000);
  trial.domain_factor = 1 + rng->NextBelow(10);
  trial.zipf = rng->NextBelow(3) == 0
                   ? 0.0
                   : 0.3 + 0.69 * rng->NextDouble();
  trial.duplicates = rng->NextBelow(4) == 0;
  trial.threads = 1 + static_cast<int>(rng->NextBelow(8));
  trial.radix_bits =
      rng->NextBelow(3) == 0 ? 0
                             : 1 + static_cast<uint32_t>(rng->NextBelow(11));
  trial.skew_factor = rng->NextBelow(4) == 0
                          ? 0
                          : 1 + static_cast<uint32_t>(rng->NextBelow(16));
  return trial;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, RandomTrialBatch) {
  static numa::NumaSystem* system = new numa::NumaSystem(4);
  Rng rng(0xD1FFu + GetParam() * 1000003);

  constexpr int kTrialsPerBatch = 6;
  for (int t = 0; t < kTrialsPerBatch; ++t) {
    const TrialConfig trial = RandomTrial(&rng);

    workload::Relation build =
        trial.domain_factor > 1
            ? workload::MakeSparseBuild(system, trial.build_size,
                                        trial.domain_factor, rng.Next()).value()
            : workload::MakeDenseBuild(system, trial.build_size, rng.Next()).value();
    if (trial.duplicates) {
      // Overwrite some keys with repeats of other build keys.
      for (uint64_t i = 0; i < build.size(); i += 7) {
        build.data()[i].key =
            build.data()[rng.NextBelow(build.size())].key;
      }
    }
    workload::Relation probe =
        trial.zipf > 0.0 && trial.domain_factor == 1
            ? workload::MakeZipfProbe(system, trial.probe_size,
                                      trial.build_size, trial.zipf,
                                      rng.Next()).value()
            : workload::MakeProbeFromBuild(system, trial.probe_size, build,
                                           rng.Next()).value();

    const JoinResult expected = ReferenceJoin(build.cspan(), probe.cspan());

    JoinConfig config;
    config.num_threads = trial.threads;
    config.radix_bits = trial.radix_bits;
    config.skew_task_factor = trial.skew_factor;
    config.build_unique = !trial.duplicates;

    for (const Algorithm algorithm : AllAlgorithms()) {
      if (trial.duplicates && InfoOf(algorithm).requires_dense_keys) {
        continue;  // array tables require unique keys by construction
      }
      const JoinResult result =
          RunJoin(algorithm, system, config, build, probe).value();
      ASSERT_EQ(result.matches, expected.matches)
          << NameOf(algorithm) << " on " << trial.ToString();
      ASSERT_EQ(result.checksum, expected.checksum)
          << NameOf(algorithm) << " on " << trial.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, DifferentialTest, ::testing::Range(0, 8));

// Heavy-skew differential: Zipf theta = 1.25 (the regime of the paper's
// Fig 15 where most probe tuples hit a handful of partitions) with the skew
// splitter enabled, so every algorithm exercises probe-slice tasks, the
// shared skew build slots, and cross-node steals -- then must still match
// the reference exactly.
TEST(DifferentialSkewTest, ZipfThetaAboveOneMatchesReference) {
  static numa::NumaSystem* system = new numa::NumaSystem(4);
  constexpr uint64_t kBuild = 40000;
  constexpr uint64_t kProbe = 400000;

  const workload::Relation build =
      workload::MakeDenseBuild(system, kBuild, 0xB17Du).value();
  const workload::Relation probe =
      workload::MakeZipfProbe(system, kProbe, kBuild, 1.25, 0x5EEDu).value();
  const JoinResult expected = ReferenceJoin(build.cspan(), probe.cspan());

  JoinConfig config;
  config.num_threads = 8;
  config.skew_task_factor = 4;

  for (const Algorithm algorithm : AllAlgorithms()) {
    const JoinResult result =
        RunJoin(algorithm, system, config, build, probe).value();
    ASSERT_EQ(result.matches, expected.matches) << NameOf(algorithm);
    ASSERT_EQ(result.checksum, expected.checksum) << NameOf(algorithm);
  }
}

}  // namespace
}  // namespace mmjoin::join
